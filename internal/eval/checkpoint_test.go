package eval

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// Checkpoint behaviour under dispatcher conditions: lane files written by
// remote workers, duplicated by hedged shards, torn by crashes, and
// carried across re-dispatch generations. These tests fabricate records
// directly (no trained environment) — the invariants under test live
// entirely in the record/checkpoint layer.

// fabricatedGrid is a synthetic 2×2×2 grid identity.
func fabricatedGrid() []CellID {
	ids := make([]CellID, 0, 8)
	for _, sc := range []string{"s0", "s1"} {
		for _, at := range []string{"none", "cap"} {
			for _, df := range []string{"none", "median"} {
				i := len(ids)
				ids = append(ids, CellID{
					Index: i, Seed: 5000 + int64(i)*17,
					Scenario: sc, Attack: at, Defense: df,
				})
			}
		}
	}
	return ids
}

// fabricatedCell derives a deterministic MatrixCell from a grid identity,
// including one +Inf TTC so the infinity-safe encoding is on the path.
func fabricatedCell(id CellID) MatrixCell {
	ttc := 1.5 + float64(id.Index)
	if id.Index == 2 {
		ttc = math.Inf(1)
	}
	return MatrixCell{
		Scenario: id.Scenario, Attack: id.Attack, Defense: id.Defense, Seed: id.Seed,
		Collision: id.Index%3 == 0,
		MinGap:    0.5 + float64(id.Index), MinTTC: ttc,
		MeanGapErr: 0.125 * float64(id.Index), Steps: 10 + id.Index,
		Result: sim.Result{
			Times:    []float64{0, 0.1},
			TrueGaps: []float64{float64(id.Index), float64(id.Index) + 1},
			MinGap:   0.5 + float64(id.Index), MinTTC: ttc,
			Collision: id.Index%3 == 0,
		},
	}
}

const (
	fabPreset   = "micro"
	fabDuration = 0.8
	fabDT       = 0.1
)

// laneLine encodes one checkpoint line (with trailing newline) for id.
func laneLine(t *testing.T, id CellID) []byte {
	t.Helper()
	rec := SweepRecord{
		Index: id.Index, Seed: id.Seed, Preset: fabPreset,
		Duration: fabDuration, DT: fabDT, Cell: fabricatedCell(id),
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return append(buf, '\n')
}

func writeLane(t *testing.T, path string, ids []CellID, pick []int) {
	t.Helper()
	var buf []byte
	for _, i := range pick {
		buf = append(buf, laneLine(t, ids[i])...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadSweepCheckpointTornTailMidRecord: a crash mid-append leaves a
// partial final line; loading must recover every complete record, report
// the valid prefix length exactly at the last complete line, and never
// count the torn record done. An unterminated line that happens to parse
// is equally not done — the repair truncates it and the cell re-runs.
func TestLoadSweepCheckpointTornTailMidRecord(t *testing.T) {
	ids := fabricatedGrid()
	dir := t.TempDir()
	path := filepath.Join(dir, "lane.jsonl")

	var complete []byte
	for _, i := range []int{0, 1, 2} {
		complete = append(complete, laneLine(t, ids[i])...)
	}
	torn := laneLine(t, ids[3])
	torn = torn[:len(torn)/2] // cut mid-record, no newline
	if err := os.WriteFile(path, append(append([]byte{}, complete...), torn...), 0o644); err != nil {
		t.Fatal(err)
	}

	done, validLen, err := LoadSweepCheckpoint(path, ids, fabPreset, fabDuration, fabDT)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 {
		t.Fatalf("recovered %d cells, want 3", len(done))
	}
	if validLen != int64(len(complete)) {
		t.Fatalf("valid prefix %d bytes, want %d (end of last complete line)", validLen, len(complete))
	}
	for _, i := range []int{0, 1, 2} {
		if !reflect.DeepEqual(done[i], fabricatedCell(ids[i])) {
			t.Fatalf("cell %d corrupted by round trip", i)
		}
	}
	if _, torn := done[3]; torn {
		t.Fatal("torn record counted as done")
	}

	// Repair + re-append, as the resumed worker does: truncate to the
	// valid prefix, append the record whole — now all four count.
	if err := os.Truncate(path, validLen); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(laneLine(t, ids[3])); err != nil {
		t.Fatal(err)
	}
	f.Close()
	done, _, err = LoadSweepCheckpoint(path, ids, fabPreset, fabDuration, fabDT)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 4 {
		t.Fatalf("after repair: %d cells, want 4", len(done))
	}

	// A final record that parses but lacks its newline is still not done.
	unterminated := laneLine(t, ids[4])
	unterminated = unterminated[:len(unterminated)-1]
	f, err = os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(unterminated); err != nil {
		t.Fatal(err)
	}
	f.Close()
	done, validLen2, err := LoadSweepCheckpoint(path, ids, fabPreset, fabDuration, fabDT)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := done[4]; ok {
		t.Fatal("unterminated record counted as done")
	}
	if len(done) != 4 {
		t.Fatalf("unterminated tail changed recovery: %d cells", len(done))
	}
	if st, _ := os.Stat(path); validLen2 >= st.Size() {
		t.Fatalf("valid prefix %d should exclude the unterminated tail (file %d)", validLen2, st.Size())
	}
}

// TestLoadSweepCheckpointRejectsForeignGeneration: a lane file surviving
// from an earlier dispatch generation whose grid diverged (different
// seeds, different run configuration) must be rejected loudly when the
// re-dispatch resumes onto it — silent mixing would corrupt the merge.
func TestLoadSweepCheckpointRejectsForeignGeneration(t *testing.T) {
	ids := fabricatedGrid()
	dir := t.TempDir()
	path := filepath.Join(dir, "lane.jsonl")
	writeLane(t, path, ids, []int{0, 1})

	// Generation 2 re-derives the grid under a different base seed.
	shifted := make([]CellID, len(ids))
	copy(shifted, ids)
	for i := range shifted {
		shifted[i].Seed += 1000
	}
	_, _, err := LoadSweepCheckpoint(path, shifted, fabPreset, fabDuration, fabDT)
	if err == nil || !strings.Contains(err.Error(), "stale checkpoint?") {
		t.Fatalf("foreign-seed generation not rejected as stale: %v", err)
	}

	// Same grid, different run configuration: also a foreign generation.
	if _, _, err := LoadSweepCheckpoint(path, ids, fabPreset, 2*fabDuration, fabDT); err == nil ||
		!strings.Contains(err.Error(), "stale checkpoint?") {
		t.Fatalf("foreign-duration generation not rejected: %v", err)
	}
	if _, _, err := LoadSweepCheckpoint(path, ids, "paper", fabDuration, fabDT); err == nil {
		t.Fatalf("foreign-preset generation not rejected: %v", err)
	}

	// The matching generation still loads.
	done, _, err := LoadSweepCheckpoint(path, ids, fabPreset, fabDuration, fabDT)
	if err != nil || len(done) != 2 {
		t.Fatalf("matching generation failed: %d cells, %v", len(done), err)
	}
}

// TestMergeSweepsDuplicateHedgedCells: a hedged shard delivers its cells
// twice — once from the straggler's lane, once from the hedge lane. The
// merge must accept bit-identical duplicates and produce the exact grid;
// a duplicate that DIFFERS (diverging runs) must abort the merge.
func TestMergeSweepsDuplicateHedgedCells(t *testing.T) {
	ids := fabricatedGrid()
	dir := t.TempDir()
	primary := filepath.Join(dir, "shard_0_of_2.jsonl")
	hedge := filepath.Join(dir, "shard_0_of_2_hedge.jsonl")
	other := filepath.Join(dir, "shard_1_of_2.jsonl")

	// The straggler finished half its shard before the hedge fired; the
	// hedge re-ran the whole shard. Cells 0 and 2 exist in both lanes.
	writeLane(t, primary, ids, []int{0, 2})
	writeLane(t, hedge, ids, []int{0, 2, 4, 6})
	writeLane(t, other, ids, []int{1, 3, 5, 7})

	rep, err := MergeSweeps(ids, fabPreset, fabDuration, fabDT, []string{primary, hedge, other})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != len(ids) {
		t.Fatalf("merged %d cells, want %d", len(rep.Cells), len(ids))
	}
	for _, id := range ids {
		if !reflect.DeepEqual(rep.Cells[id.Index], fabricatedCell(id)) {
			t.Fatalf("merged cell %d diverges", id.Index)
		}
	}

	// Tamper with the hedge's copy of cell 2: the duplicate now disagrees
	// with the primary, which means the lanes came from diverging runs —
	// the merge must fail, not pick a winner.
	bad := fabricatedCell(ids[2])
	bad.MinGap += 0.25
	rec := SweepRecord{
		Index: ids[2].Index, Seed: ids[2].Seed, Preset: fabPreset,
		Duration: fabDuration, DT: fabDT, Cell: bad,
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var tampered []byte
	tampered = append(tampered, laneLine(t, ids[0])...)
	tampered = append(tampered, buf...)
	tampered = append(tampered, '\n')
	tampered = append(tampered, laneLine(t, ids[4])...)
	tampered = append(tampered, laneLine(t, ids[6])...)
	if err := os.WriteFile(hedge, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeSweeps(ids, fabPreset, fabDuration, fabDT, []string{primary, hedge, other}); err == nil ||
		!strings.Contains(err.Error(), "differs between") {
		t.Fatalf("diverging duplicate not rejected: %v", err)
	}
}
