package eval

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/metrics"
	"repro/internal/regress"
	"repro/internal/scene"
	"repro/internal/xrand"
)

// Env holds the shared experiment state: datasets, the two trained victim
// models, and (lazily) the trained diffusion prior. Building an Env is the
// expensive step; every table reuses it.
type Env struct {
	Preset  Preset
	Budgets AttackBudgets

	SignCfg  scene.SignConfig
	DriveCfg scene.DriveConfig

	Det *detect.Detector
	Reg *regress.Regressor

	SignTrainSet *dataset.SignSet
	SignTestSet  *dataset.SignSet
	DriveTrain   *dataset.DriveSet
	DriveTest    *dataset.DriveSet // stratified over the paper's buckets

	// Logf, when non-nil, receives every harness progress line — library
	// code never logs anywhere else. NewEnvWith installs it before
	// training so the victim-training epochs log through it too.
	Logf func(format string, args ...any)

	// Workers caps the worker-pool size of parallel runs; 0 means
	// GOMAXPROCS. Experiment construction sets it via WithWorkers.
	Workers int

	diffOnce sync.Once
	diff     *defense.Diffusion
}

// NewEnv generates datasets and trains the victim models under the preset.
func NewEnv(p Preset) *Env {
	e, err := NewEnvWith(context.Background(), p, nil)
	if err != nil {
		// Unreachable: the background context never cancels and dataset
		// generation/training have no other failure modes.
		panic(err)
	}
	return e
}

// NewEnvWith is NewEnv with a cancellation context and the progress logger
// installed up front, so dataset generation and victim training are both
// abortable and observable. It checks ctx between the expensive stages and
// returns the context error if construction was cancelled.
func NewEnvWith(ctx context.Context, p Preset, logf func(format string, args ...any)) (*Env, error) {
	return NewEnvCached(ctx, p, logf, nil)
}

// NewEnvCached is NewEnvWith backed by a model artifact store: victim
// weights found under the preset key are loaded instead of trained (a
// warm start skips the dominant cold-start cost entirely), and freshly
// trained weights are stored for the next construction. Because training
// is deterministic and the store round-trips exact float32 data, a
// warm-started Env is bit-identical to a trained one. A nil store trains
// unconditionally.
func NewEnvCached(ctx context.Context, p Preset, logf func(format string, args ...any), store *ModelStore) (*Env, error) {
	e := &Env{
		Preset:   p,
		Budgets:  DefaultBudgets(),
		SignCfg:  scene.DefaultSignConfig(),
		DriveCfg: scene.DefaultDriveConfig(),
		Logf:     logf,
	}
	rng := xrand.New(p.Seed)

	e.logf("env: generating datasets (preset %s)", p.Name)
	e.SignTrainSet = dataset.GenerateSignSet(rng.Split(), e.SignCfg, p.SignTrain)
	e.SignTestSet = dataset.GenerateSignSet(rng.Split(), e.SignCfg, p.SignTest)
	e.DriveTrain = dataset.GenerateDriveSet(rng.Split(), e.DriveCfg, p.DriveTrain, e.DriveCfg.MinZ, e.DriveCfg.MaxZ)
	// Stratified test set: equal support in each of the paper's ranges.
	// The [0,20] bucket starts at the generator's minimum usable distance.
	buckets := [][2]float64{{e.DriveCfg.MinZ, 20}, {20, 40}, {40, 60}, {60, 80}}
	e.DriveTest = dataset.GenerateDriveSetStratified(rng.Split(), e.DriveCfg, p.DrivePerBucket, buckets)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("env: cancelled after dataset generation: %w", err)
	}

	// The rng.Split() draws below happen on warm and cold paths alike, so
	// the stream stays aligned and a mixed build (one model warm, one
	// trained) is still bit-identical to an all-cold build.
	e.Det = detect.New(rng.Split(), e.SignCfg.Size)
	trainDet := func() error {
		dcfg := detect.DefaultTrainConfig()
		dcfg.Epochs = p.DetEpochs
		dcfg.Seed = p.Seed + 1
		dcfg.Logf = e.Logf
		e.Det.Train(e.SignTrainSet, dcfg)
		return nil
	}
	if store == nil {
		trainDet()
	} else {
		// EnsureDetector holds the cross-process training lock: if a
		// sibling worker sharing this store is already training the same
		// preset, this one waits and warm-starts from its artifact.
		trained, err := store.EnsureDetector(e.Det, p, trainDet, e.Logf)
		if err != nil {
			return nil, err
		}
		if !trained {
			e.logf("env: detector warm start from artifact %s (training skipped)", store.DetectorKey(p))
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("env: cancelled after detector training: %w", err)
	}

	e.Reg = regress.New(rng.Split(), e.DriveCfg.Size)
	trainReg := func() error {
		rcfg := regress.DefaultTrainConfig()
		rcfg.Epochs = p.RegEpochs
		rcfg.Seed = p.Seed + 2
		rcfg.Logf = e.Logf
		e.Reg.Train(e.DriveTrain, rcfg)
		return nil
	}
	if store == nil {
		trainReg()
	} else {
		trained, err := store.EnsureRegressor(e.Reg, p, trainReg, e.Logf)
		if err != nil {
			return nil, err
		}
		if !trained {
			e.logf("env: regressor warm start from artifact %s (training skipped)", store.RegressorKey(p))
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("env: cancelled after regressor training: %w", err)
	}

	return e, nil
}

// logf logs progress when a sink is configured.
func (e *Env) logf(format string, args ...any) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

// logObs routes one progress line to both the injected logger and, as an
// EventLog, to the run observer — the observers own all run output.
func (e *Env) logObs(obs Observer, format string, args ...any) {
	if e.Logf == nil && obs == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if e.Logf != nil {
		e.Logf("%s", msg)
	}
	emit(obs, Event{Kind: EventLog, Msg: msg})
}

// Diffusion returns the trained DDPM prior, training it on first use on a
// mixture of clean sign and driving scenes (the defense must cover both
// tasks' input distributions).
func (e *Env) Diffusion() *defense.Diffusion {
	e.diffOnce.Do(func() {
		cfg := defense.DefaultDiffusionConfig()
		cfg.TrainSteps = e.Preset.DiffusionSteps
		cfg.Seed = e.Preset.Seed + 3
		cfg.Logf = e.Logf
		rng := xrand.New(e.Preset.Seed + 4)
		d := defense.NewDiffusion(rng.Split(), cfg)
		pick := rng.Split()
		d.Train(cfg, func() *imaging.Image {
			if pick.Bool(0.5) {
				return e.SignTrainSet.Scenes[pick.Intn(e.SignTrainSet.Len())].Img
			}
			return e.DriveTrain.Scenes[pick.Intn(e.DriveTrain.Len())].Img
		})
		e.diff = d
	})
	return e.diff
}

// DiffPIR returns the diffusion defense as a Preprocessor.
func (e *Env) DiffPIR() *defense.DiffPIRDefense {
	cfg := defense.DefaultDiffPIRConfig()
	cfg.Steps = e.Preset.DiffPIRSteps
	return &defense.DiffPIRDefense{Model: e.Diffusion(), Cfg: cfg}
}

// Ranges are the evaluation buckets used in every regression table; the
// first bucket label is the paper's "[0,20]".
func (e *Env) Ranges() [][2]float64 { return metrics.PaperRanges }

// maxWorkers returns the worker-pool size parallelMap will use for n
// items; callers allocate one model clone per worker. The pool is capped
// by Env.Workers when set (WithWorkers), else by GOMAXPROCS.
func (e *Env) maxWorkers(n int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelMap runs fn(i) for i in [0,n) across workers workers. Workers
// receive a worker id so callers can hand each one a cloned model.
func parallelMap(workers, n int, fn func(worker, i int)) {
	parallelMapCtx(context.Background(), workers, n, fn)
}

// parallelMapCtx is parallelMap under a cancellation context: items are
// dispatched until ctx is done, in-flight items run to completion, and the
// context error (if any) is returned. Item order and worker assignment are
// irrelevant to results — every caller derives per-item determinism from
// the item index, never from scheduling.
func parallelMapCtx(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		return nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				fn(worker, i)
			}
		}(w)
	}
	done := ctx.Done()
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}
