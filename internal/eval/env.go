package eval

import (
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/metrics"
	"repro/internal/regress"
	"repro/internal/scene"
	"repro/internal/xrand"
)

// Env holds the shared experiment state: datasets, the two trained victim
// models, and (lazily) the trained diffusion prior. Building an Env is the
// expensive step; every table reuses it.
type Env struct {
	Preset  Preset
	Budgets AttackBudgets

	SignCfg  scene.SignConfig
	DriveCfg scene.DriveConfig

	Det *detect.Detector
	Reg *regress.Regressor

	SignTrainSet *dataset.SignSet
	SignTestSet  *dataset.SignSet
	DriveTrain   *dataset.DriveSet
	DriveTest    *dataset.DriveSet // stratified over the paper's buckets

	Logf func(format string, args ...any)

	diffOnce sync.Once
	diff     *defense.Diffusion
}

// NewEnv generates datasets and trains the victim models under the preset.
func NewEnv(p Preset) *Env {
	e := &Env{
		Preset:   p,
		Budgets:  DefaultBudgets(),
		SignCfg:  scene.DefaultSignConfig(),
		DriveCfg: scene.DefaultDriveConfig(),
	}
	rng := xrand.New(p.Seed)

	e.SignTrainSet = dataset.GenerateSignSet(rng.Split(), e.SignCfg, p.SignTrain)
	e.SignTestSet = dataset.GenerateSignSet(rng.Split(), e.SignCfg, p.SignTest)
	e.DriveTrain = dataset.GenerateDriveSet(rng.Split(), e.DriveCfg, p.DriveTrain, e.DriveCfg.MinZ, e.DriveCfg.MaxZ)
	// Stratified test set: equal support in each of the paper's ranges.
	// The [0,20] bucket starts at the generator's minimum usable distance.
	buckets := [][2]float64{{e.DriveCfg.MinZ, 20}, {20, 40}, {40, 60}, {60, 80}}
	e.DriveTest = dataset.GenerateDriveSetStratified(rng.Split(), e.DriveCfg, p.DrivePerBucket, buckets)

	e.Det = detect.New(rng.Split(), e.SignCfg.Size)
	dcfg := detect.DefaultTrainConfig()
	dcfg.Epochs = p.DetEpochs
	dcfg.Seed = p.Seed + 1
	e.Det.Train(e.SignTrainSet, dcfg)

	e.Reg = regress.New(rng.Split(), e.DriveCfg.Size)
	rcfg := regress.DefaultTrainConfig()
	rcfg.Epochs = p.RegEpochs
	rcfg.Seed = p.Seed + 2
	e.Reg.Train(e.DriveTrain, rcfg)

	return e
}

// logf logs progress when a sink is configured.
func (e *Env) logf(format string, args ...any) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

// Diffusion returns the trained DDPM prior, training it on first use on a
// mixture of clean sign and driving scenes (the defense must cover both
// tasks' input distributions).
func (e *Env) Diffusion() *defense.Diffusion {
	e.diffOnce.Do(func() {
		cfg := defense.DefaultDiffusionConfig()
		cfg.TrainSteps = e.Preset.DiffusionSteps
		cfg.Seed = e.Preset.Seed + 3
		cfg.Logf = e.Logf
		rng := xrand.New(e.Preset.Seed + 4)
		d := defense.NewDiffusion(rng.Split(), cfg)
		pick := rng.Split()
		d.Train(cfg, func() *imaging.Image {
			if pick.Bool(0.5) {
				return e.SignTrainSet.Scenes[pick.Intn(e.SignTrainSet.Len())].Img
			}
			return e.DriveTrain.Scenes[pick.Intn(e.DriveTrain.Len())].Img
		})
		e.diff = d
	})
	return e.diff
}

// DiffPIR returns the diffusion defense as a Preprocessor.
func (e *Env) DiffPIR() *defense.DiffPIRDefense {
	cfg := defense.DefaultDiffPIRConfig()
	cfg.Steps = e.Preset.DiffPIRSteps
	return &defense.DiffPIRDefense{Model: e.Diffusion(), Cfg: cfg}
}

// Ranges are the evaluation buckets used in every regression table; the
// first bucket label is the paper's "[0,20]".
func (e *Env) Ranges() [][2]float64 { return metrics.PaperRanges }

// maxWorkers returns the worker-pool size parallelMap will use for n
// items; callers allocate one model clone per worker.
func maxWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelMap runs fn(i) for i in [0,n) across maxWorkers(n) workers.
// Workers receive a worker id so callers can hand each one a cloned model.
func parallelMap(n int, fn func(worker, i int)) {
	workers := maxWorkers(n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				fn(worker, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
