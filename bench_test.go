package advperception

// Benchmark harness: one benchmark per table and figure of the paper, plus
// the defense-latency measurements behind the §VI discussion and the
// ablation benches DESIGN.md calls out. All benches share one Quick-preset
// environment (datasets + trained victims) built lazily on first use;
// model training is excluded from the timed region.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem

import (
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/eval"
	"repro/internal/imaging"
	"repro/internal/scene"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

var (
	benchOnce sync.Once
	benchEnv  *eval.Env
)

func sharedEnv(b *testing.B) *eval.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv = eval.NewEnv(eval.Quick())
	})
	return benchEnv
}

// BenchmarkFig1DatasetExamples regenerates the paper's Fig. 1: one example
// from each dataset (a stop-sign scene and a driving frame).
func BenchmarkFig1DatasetExamples(b *testing.B) {
	rng := xrand.New(1)
	signCfg := scene.DefaultSignConfig()
	driveCfg := scene.DefaultDriveConfig()
	for i := 0; i < b.N; i++ {
		_ = scene.GenerateSign(rng, signCfg)
		_ = scene.GenerateDrive(rng, driveCfg, 25)
	}
}

// BenchmarkTableIAttackErrors regenerates Table I: average induced
// distance error per range under Gaussian, FGSM, Auto-PGD and CAP-Attack.
func BenchmarkTableIAttackErrors(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := env.RunTableI()
		if len(t.Rows) != 4 {
			b.Fatalf("table I rows = %d", len(t.Rows))
		}
	}
}

// BenchmarkFig2DetectionUnderAttack regenerates Fig. 2: stop-sign
// detection scores with and without attacks.
func BenchmarkFig2DetectionUnderAttack(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := env.RunFig2()
		if len(f.Rows) != 6 {
			b.Fatalf("fig 2 rows = %d", len(f.Rows))
		}
	}
}

// BenchmarkTableIIImageProcessing regenerates Table II: the image-
// preprocessing defenses against every attack on both tasks.
func BenchmarkTableIIImageProcessing(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := env.RunTableII()
		if len(t.Rows) != 16 {
			b.Fatalf("table II rows = %d", len(t.Rows))
		}
	}
}

// BenchmarkTableIIIAdversarialTraining regenerates Table III: the
// adversarial-training transfer matrix (single-attack and mixed sets).
func BenchmarkTableIIIAdversarialTraining(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := env.RunTableIII()
		if len(t.Cells) != 20 {
			b.Fatalf("table III cells = %d", len(t.Cells))
		}
	}
}

// BenchmarkTableIVContrastive regenerates Table IV: the contrastive-
// learning detector evaluated across adversarial example sets.
func BenchmarkTableIVContrastive(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := env.RunTableIV()
		if len(t.Cells) != 25 {
			b.Fatalf("table IV cells = %d", len(t.Cells))
		}
	}
}

// BenchmarkTableVDiffusion regenerates Table V: DiffPIR restoration before
// inference under every attack.
func BenchmarkTableVDiffusion(b *testing.B) {
	env := sharedEnv(b)
	env.Diffusion() // train the prior outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := env.RunTableV()
		if len(t.Rows) != 5 {
			b.Fatalf("table V rows = %d", len(t.Rows))
		}
	}
}

// --- §VI latency: per-frame defense cost. The paper reports ~20 ms per
// frame for classical preprocessing and 1–2 s per image for DiffPIR. ---

func benchFrame(b *testing.B) *imaging.Image {
	b.Helper()
	return scene.GenerateDrive(xrand.New(5), scene.DefaultDriveConfig(), 20).Img
}

// BenchmarkDefenseLatencyMedian times median blurring per frame.
func BenchmarkDefenseLatencyMedian(b *testing.B) {
	img := benchFrame(b)
	d := defense.NewMedianBlur()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Process(img)
	}
}

// BenchmarkDefenseLatencyBitDepth times bit-depth reduction per frame.
func BenchmarkDefenseLatencyBitDepth(b *testing.B) {
	img := benchFrame(b)
	d := defense.NewBitDepth()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Process(img)
	}
}

// BenchmarkDefenseLatencyRandomization times the randomization defense per
// frame.
func BenchmarkDefenseLatencyRandomization(b *testing.B) {
	img := benchFrame(b)
	d := defense.NewRandomization(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Process(img)
	}
}

// BenchmarkDefenseLatencyDiffPIR times one DiffPIR restoration; the
// orders-of-magnitude gap to the classical defenses is the paper's §VI
// real-time feasibility point.
func BenchmarkDefenseLatencyDiffPIR(b *testing.B) {
	env := sharedEnv(b)
	d := env.DiffPIR()
	img := benchFrame(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Process(img)
	}
}

// --- Model and attack micro-benchmarks. ---

// BenchmarkDetectorForward times one TinyDet inference.
func BenchmarkDetectorForward(b *testing.B) {
	env := sharedEnv(b)
	img := env.SignTestSet.Scenes[0].Img
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.Det.Forward(img)
	}
}

// BenchmarkRegressorForward times one DistNet inference.
func BenchmarkRegressorForward(b *testing.B) {
	env := sharedEnv(b)
	img := env.DriveTest.Scenes[0].Img
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.Reg.Predict(img)
	}
}

// BenchmarkRegressorForwardBatch8 times one batched DistNet inference over
// 8 frames (one op = 8 frames). Frames/s against BenchmarkRegressorForward
// is the ISSUE 3 acceptance ratio: 8·(single ns/op) / (batch ns/op) must
// stay ≥ 1.5.
func BenchmarkRegressorForwardBatch8(b *testing.B) {
	env := sharedEnv(b)
	imgs := make([]*imaging.Image, 8)
	for i := range imgs {
		imgs[i] = env.DriveTest.Scenes[i].Img
	}
	preds := make([]float64, len(imgs))
	env.Reg.PredictBatchInto(preds, imgs) // size the batched workspace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Reg.PredictBatchInto(preds, imgs)
	}
}

// BenchmarkDetectorForwardBatch8 times one batched TinyDet inference over
// 8 frames (one op = 8 frames).
func BenchmarkDetectorForwardBatch8(b *testing.B) {
	env := sharedEnv(b)
	imgs := make([]*imaging.Image, 8)
	for i := range imgs {
		imgs[i] = env.SignTestSet.Scenes[i].Img
	}
	env.Det.ForwardBatch(imgs) // size the batched workspace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.Det.ForwardBatch(imgs)
	}
}

// BenchmarkAttackFGSM times one single-step white-box attack (forward +
// input-gradient backward).
func BenchmarkAttackFGSM(b *testing.B) {
	env := sharedEnv(b)
	sc := env.DriveTest.Scenes[0]
	obj := &attack.RegressionObjective{Reg: env.Reg}
	mask := attack.BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = attack.FGSM(obj, sc.Img, 0.02, mask)
	}
}

// BenchmarkAttackAutoPGD times a full Auto-PGD run on one frame.
func BenchmarkAttackAutoPGD(b *testing.B) {
	env := sharedEnv(b)
	sc := env.DriveTest.Scenes[0]
	obj := &attack.RegressionObjective{Reg: env.Reg}
	mask := attack.BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
	cfg := attack.DefaultAPGDConfig(0.03)
	cfg.Steps = env.Preset.APGDSteps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = attack.AutoPGD(obj, sc.Img, cfg, mask)
	}
}

// BenchmarkAttackFGSMBatch8 times the batched single-step attack over 8
// frames (one op = 8 frames): one fused forward/backward instead of 8
// per-frame pairs. Frames/s against BenchmarkAttackFGSM is the batching
// win on top of the unified SIMD kernel.
func BenchmarkAttackFGSMBatch8(b *testing.B) {
	env := sharedEnv(b)
	obj := &attack.RegressionObjective{Reg: env.Reg}
	imgs := make([]*imaging.Image, 8)
	masks := make([]*tensor.Tensor, 8)
	dst := make([]*imaging.Image, 8)
	for i := range imgs {
		sc := env.DriveTest.Scenes[i]
		imgs[i] = sc.Img
		masks[i] = attack.BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
		dst[i] = imaging.NewImage(sc.Img.C, sc.Img.H, sc.Img.W)
	}
	attack.FGSMBatch(dst, obj, imgs, 0.02, masks) // size the batched workspace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attack.FGSMBatch(dst, obj, imgs, 0.02, masks)
	}
}

// BenchmarkAttackAutoPGDBatch8 times a full batched Auto-PGD run over 8
// frames in lockstep (one op = 8 frames, two GEMM-shaped passes per step).
func BenchmarkAttackAutoPGDBatch8(b *testing.B) {
	env := sharedEnv(b)
	obj := &attack.RegressionObjective{Reg: env.Reg}
	imgs := make([]*imaging.Image, 8)
	masks := make([]*tensor.Tensor, 8)
	for i := range imgs {
		sc := env.DriveTest.Scenes[i]
		imgs[i] = sc.Img
		masks[i] = attack.BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
	}
	cfg := attack.DefaultAPGDConfig(0.03)
	cfg.Steps = env.Preset.APGDSteps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = attack.AutoPGDBatch(obj, imgs, cfg, masks)
	}
}

// BenchmarkAttackCAPFrame times one runtime CAP-Attack frame refinement —
// the per-frame compute budget the attack's stealth argument rests on.
func BenchmarkAttackCAPFrame(b *testing.B) {
	env := sharedEnv(b)
	sc := env.DriveTest.Scenes[0]
	obj := &attack.RegressionObjective{Reg: env.Reg}
	c := attack.NewCAP(attack.DefaultCAPConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Apply(obj, sc.Img, sc.LeadBox)
	}
}

// --- Ablation benches (design choices called out in DESIGN.md §4). ---

// BenchmarkAblationAPGDStep compares Auto-PGD against plain PGD at equal
// budget; the report value is the near-range induced error of each.
func BenchmarkAblationAPGDStep(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	var apgd, pgd float64
	for i := 0; i < b.N; i++ {
		apgd, pgd = env.APGDvsPGD()
	}
	b.ReportMetric(apgd, "apgd_err_m")
	b.ReportMetric(pgd, "pgd_err_m")
}

// BenchmarkAblationCAPWarmStart compares CAP's warm-started patch against
// a cold-start variant.
func BenchmarkAblationCAPWarmStart(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	var warm, cold float64
	for i := 0; i < b.N; i++ {
		warm, cold = env.CAPWarmVsCold()
	}
	b.ReportMetric(warm, "warm_err_m")
	b.ReportMetric(cold, "cold_err_m")
}

// BenchmarkAblationRP2EOT sweeps RP2's expectation-over-transforms sample
// count; more samples should yield a more damaging (lower mAP) patch.
func BenchmarkAblationRP2EOT(b *testing.B) {
	env := sharedEnv(b)
	b.ResetTimer()
	var maps []float64
	for i := 0; i < b.N; i++ {
		maps = env.RP2EOTSweep([]int{1, 4})
	}
	b.ReportMetric(100*maps[0], "map50_eot1_pct")
	b.ReportMetric(100*maps[1], "map50_eot4_pct")
}

// BenchmarkAblationDiffPIRSteps sweeps the DiffPIR reverse-step count.
func BenchmarkAblationDiffPIRSteps(b *testing.B) {
	env := sharedEnv(b)
	env.Diffusion()
	b.ResetTimer()
	var maps []float64
	for i := 0; i < b.N; i++ {
		maps = env.DiffPIRStepSweep([]int{4, 12})
	}
	b.ReportMetric(100*maps[0], "map50_steps4_pct")
	b.ReportMetric(100*maps[1], "map50_steps12_pct")
}
