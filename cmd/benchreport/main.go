// Command benchreport runs the repository's benchmark suite with -benchmem,
// parses the output and writes a BENCH_<date>.json snapshot (ns/op, B/op,
// allocs/op per benchmark) — the tracked performance trajectory the ROADMAP
// calls for. With -baseline it embeds a previous snapshot and per-benchmark
// deltas, which is how before/after evidence for a perf PR is recorded.
//
// Usage:
//
//	go run ./cmd/benchreport                         # default micro suite
//	go run ./cmd/benchreport -bench 'MatMul' -pkg ./internal/tensor
//	go run ./cmd/benchreport -baseline BENCH_old.json -out BENCH_new.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/tensor"
)

// defaultBench selects the micro-benchmarks: model forwards, attack steps,
// per-frame defense latency and the tensor/nn kernels. The table/figure
// regeneration benches (minutes each) and DiffPIR (trains a prior) are
// deliberately excluded; pass -bench to override.
const defaultBench = "BenchmarkRegressorForward|BenchmarkRegressorForwardBatch8|" +
	"BenchmarkDetectorForward|BenchmarkDetectorForwardBatch8|BenchmarkAttackFGSM|" +
	"BenchmarkAttackAutoPGD|BenchmarkAttackCAPFrame|BenchmarkDefenseLatencyMedian|" +
	"BenchmarkDefenseLatencyBitDepth|BenchmarkDefenseLatencyRandomization|" +
	"BenchmarkMatMul|BenchmarkMatMulKMajorSerial|BenchmarkMatMulKMajorParallel|" +
	"BenchmarkIm2Col|BenchmarkCol2Im|BenchmarkTranspose2D|BenchmarkSequential"

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Delta compares a benchmark against the baseline snapshot.
type Delta struct {
	Name       string  `json:"name"`
	NsPct      float64 `json:"ns_per_op_pct"`
	BytesPct   float64 `json:"bytes_per_op_pct"`
	AllocsPct  float64 `json:"allocs_per_op_pct"`
	NsBase     float64 `json:"ns_per_op_base"`
	BytesBase  int64   `json:"bytes_per_op_base"`
	AllocsBase int64   `json:"allocs_per_op_base"`
}

// Machine identifies the hardware/dispatch configuration a snapshot was
// taken on. ns/op numbers are only comparable between runs on the same
// configuration — a baseline recorded on different cores or a different
// SIMD rung measures a different machine, and the -maxregress gate would
// silently absorb the offset in its headroom. The gate therefore refuses
// to compare mismatched machines (see machineMismatch).
type Machine struct {
	KMajorKernel string `json:"kmajor_kernel"`
	NumCPU       int    `json:"num_cpu"`
	GoMaxProcs   int    `json:"gomaxprocs"`
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
}

func currentMachine() *Machine {
	return &Machine{
		KMajorKernel: tensor.KMajorKernel(),
		NumCPU:       runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
	}
}

// machineMismatch explains why base is not comparable to cur, or returns
// "" when the two snapshots came from the same configuration. The SIMD
// rung and the core count are the comparability-critical fields: a kernel
// change rescales every GEMM-bound bench, a core-count change rescales
// every parallel one.
func machineMismatch(cur, base *Machine) string {
	if base == nil {
		return "baseline predates machine metadata (regenerate it on this runner)"
	}
	if cur.KMajorKernel != base.KMajorKernel {
		return fmt.Sprintf("kmajor kernel %q vs baseline %q", cur.KMajorKernel, base.KMajorKernel)
	}
	if cur.NumCPU != base.NumCPU {
		return fmt.Sprintf("%d CPUs vs baseline %d", cur.NumCPU, base.NumCPU)
	}
	if cur.GOOS != base.GOOS || cur.GOARCH != base.GOARCH {
		return fmt.Sprintf("%s/%s vs baseline %s/%s", cur.GOOS, cur.GOARCH, base.GOOS, base.GOARCH)
	}
	return ""
}

// Report is the BENCH_<date>.json schema.
type Report struct {
	Generated string   `json:"generated"`
	Label     string   `json:"label,omitempty"`
	GoVersion string   `json:"go_version"`
	Machine   *Machine `json:"machine,omitempty"`
	BenchRE   string   `json:"bench_regexp"`
	BenchTime string   `json:"benchtime"`
	Results   []Result `json:"results"`
	Baseline  *Report  `json:"baseline,omitempty"`
	Deltas    []Delta  `json:"deltas,omitempty"`
}

func main() {
	var (
		benchRE   = flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
		pkgs      = flag.String("pkg", "./...", "package pattern passed to go test")
		benchtime = flag.String("benchtime", "5x", "value passed to -benchtime")
		count     = flag.Int("count", 1, "value passed to -count")
		label     = flag.String("label", "", "free-form label stored in the report")
		baseline  = flag.String("baseline", "", "previous BENCH_*.json to embed and diff against")
		out       = flag.String("out", "", "output path (default BENCH_<date>.json)")
		dry       = flag.Bool("print", false, "print the report to stdout instead of writing a file")
		maxRegr   = flag.Float64("maxregress", 0, "exit non-zero when any benchmark's ns/op regresses more than this percentage vs -baseline (0 disables the gate)")
		skipMach  = flag.Bool("skipmachinecheck", false, "compare against a -baseline from a different machine anyway (deltas become cross-machine offsets, and -maxregress loses meaning)")
	)
	flag.Parse()
	if *maxRegr != 0 && *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchreport: -maxregress requires -baseline")
		os.Exit(2)
	}

	raw, err := runBench(*benchRE, *pkgs, *benchtime, *count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	results := parseBench(raw)
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines parsed; output was:")
		fmt.Fprintln(os.Stderr, raw)
		os.Exit(1)
	}

	rep := Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Label:     *label,
		GoVersion: goVersion(),
		Machine:   currentMachine(),
		BenchRE:   *benchRE,
		BenchTime: *benchtime,
		Results:   results,
	}
	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: baseline: %v\n", err)
			os.Exit(1)
		}
		// A baseline from a different machine/kernel configuration cannot
		// gate this run: the deltas would mix code changes with hardware
		// offsets. Fail loudly when gating (never silently pass) unless the
		// operator explicitly opts into a cross-machine comparison.
		if why := machineMismatch(rep.Machine, base.Machine); why != "" {
			if *skipMach {
				fmt.Fprintf(os.Stderr, "benchreport: WARNING: cross-machine baseline (%s); deltas are offsets, not regressions\n", why)
			} else if *maxRegr != 0 {
				fmt.Fprintf(os.Stderr, "benchreport: FATAL: baseline %s is not from this machine: %s\n", *baseline, why)
				fmt.Fprintln(os.Stderr, "benchreport: refresh the baseline on this runner, or pass -skipmachinecheck to compare anyway (disables the point of the gate)")
				os.Exit(1)
			} else {
				fmt.Fprintf(os.Stderr, "benchreport: note: baseline is from a different machine (%s); deltas are cross-machine offsets\n", why)
			}
		}
		// Drop the baseline's own baseline so snapshots don't nest forever.
		base.Baseline, base.Deltas = nil, nil
		rep.Baseline = base
		rep.Deltas = diff(results, base.Results)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')

	if *dry {
		os.Stdout.Write(buf)
	} else {
		path := *out
		if path == "" {
			path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: write: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchreport: wrote %s (%d benchmarks", path, len(rep.Results))
		if rep.Baseline != nil {
			fmt.Printf(", %d deltas vs baseline", len(rep.Deltas))
		}
		fmt.Println(")")
	}

	// The perf gate: with -maxregress set, any benchmark slower than the
	// baseline by more than the threshold fails the run, which is how the
	// CI perf-smoke job turns the printed deltas into a PR gate.
	if *maxRegr != 0 {
		bad := 0
		for _, d := range rep.Deltas {
			if d.NsPct > *maxRegr {
				fmt.Fprintf(os.Stderr, "benchreport: REGRESSION %s: %.1f%% ns/op over baseline %.0f ns (limit %+.1f%%)\n",
					d.Name, d.NsPct, d.NsBase, *maxRegr)
				bad++
			}
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "benchreport: %d benchmark(s) regressed past -maxregress %.1f%%\n", bad, *maxRegr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchreport: perf gate passed (no ns/op regression > %.1f%% across %d deltas)\n", *maxRegr, len(rep.Deltas))
	}
}

// runBench shells out to go test and returns the combined output.
func runBench(benchRE, pkgs, benchtime string, count int) (string, error) {
	args := []string{
		"test", "-run", "^$", "-bench", benchRE,
		"-benchmem", "-benchtime", benchtime,
		"-count", strconv.Itoa(count),
	}
	args = append(args, strings.Fields(pkgs)...)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "benchreport: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		return buf.String(), fmt.Errorf("go test: %w", err)
	}
	return buf.String(), nil
}

// benchLine matches e.g.
//
//	BenchmarkRegressorForward-8   100  1006564 ns/op  543312 B/op  84 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBench extracts benchmark results, tracking the current package from
// the "pkg:" header lines go test emits.
func parseBench(out string) []Result {
	var results []Result
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		bytesOp, _ := strconv.ParseInt(m[4], 10, 64)
		allocs, _ := strconv.ParseInt(m[5], 10, 64)
		results = append(results, Result{
			Name: m[1], Package: pkg, Iterations: iters,
			NsPerOp: ns, BytesPerOp: bytesOp, AllocsPerOp: allocs,
		})
	}
	return results
}

// diff computes percentage changes for benchmarks present in both runs.
// Benchmarks are keyed by package and name; -count>1 repeats collapse to
// the fastest run on both sides (the usual best-of comparison), so each
// benchmark yields exactly one delta.
func diff(cur, base []Result) []Delta {
	curBest := bestByBench(cur)
	baseBest := bestByBench(base)
	var ds []Delta
	seen := make(map[string]bool, len(cur))
	for _, r := range cur {
		key := r.Package + "\x00" + r.Name
		if seen[key] {
			continue
		}
		seen[key] = true
		b, ok := baseBest[key]
		if !ok && r.Package != "" {
			// Baselines written before packages were recorded (or produced
			// by hand from raw go test output) may carry empty packages.
			b, ok = baseBest["\x00"+r.Name]
		}
		if !ok {
			continue
		}
		c := curBest[key]
		ds = append(ds, Delta{
			Name:       r.Name,
			NsPct:      pct(c.NsPerOp, b.NsPerOp),
			BytesPct:   pct(float64(c.BytesPerOp), float64(b.BytesPerOp)),
			AllocsPct:  pct(float64(c.AllocsPerOp), float64(b.AllocsPerOp)),
			NsBase:     b.NsPerOp,
			BytesBase:  b.BytesPerOp,
			AllocsBase: b.AllocsPerOp,
		})
	}
	return ds
}

// bestByBench indexes results by package+name, keeping the lowest-ns
// repeat for each benchmark.
func bestByBench(rs []Result) map[string]Result {
	idx := make(map[string]Result, len(rs))
	for _, r := range rs {
		key := r.Package + "\x00" + r.Name
		if prev, ok := idx[key]; !ok || r.NsPerOp < prev.NsPerOp {
			idx[key] = r
		}
	}
	return idx
}

// pct returns the relative change from base to cur in percent.
func pct(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

func readReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &r, nil
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
