// Command advlint runs the repo's static-analysis invariant suite
// (internal/analysis) over package patterns, printing one line per
// finding and exiting non-zero when any invariant is violated:
//
//	go run ./cmd/advlint ./...
//	go run ./cmd/advlint -tags noasm ./internal/tensor/... ./internal/nn/...
//
// Build tags passed via -tags (plus GOAMD64/GOARCH from the
// environment) select the same file sets the corresponding build
// would compile, so the kernel-ladder CI legs analyze exactly the
// build-conditional code they test.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags for package loading")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: advlint [-tags t1,t2] [packages]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		printAnalyzers(flag.CommandLine.Output())
	}
	flag.Parse()
	if *list {
		printAnalyzers(os.Stdout)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadPackages(wd, tagList, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, a := range analysis.All() {
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				fmt.Printf("%s: %s (%s)\n", pos, d.Message, a.Name)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Printf("advlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func printAnalyzers(w interface{ Write([]byte) (int, error) }) {
	for _, a := range analysis.All() {
		fmt.Fprintf(w, "  %-16s %s\n", a.Name, a.Doc)
	}
}
