// Command advrepro reproduces the experiments of "Revisiting Adversarial
// Perception Attacks and Defense Methods on Autonomous Driving Systems"
// (DSN 2025): it trains the victim models, runs the selected experiment
// and prints the paper-shaped result table.
//
// Usage:
//
//	advrepro -preset quick|paper -exp table1|table2|table3|table4|table5|fig2|pipeline|ablations|all [-out report.txt]
//	advrepro matrix [-preset quick|paper] [-scenarios a,b,c] [-duration s] [-dt s] [-csv grid.csv] [-md grid.md] [-out report.txt]
//	advrepro sweep [-preset quick|paper] [-shard i/n] [-jsonl cells.jsonl] [-resume] [-paper-sweep] [-scenarios a,b,c] [-duration s] [-dt s] [-csv grid.csv] [-out report.txt]
//
// The matrix subcommand expands the scenario registry against the runtime
// attack and defense axes ({none, CAP, FGSM} x {none, median blur,
// DiffPIR}) and executes every cell in parallel with deterministic
// per-cell seeds.
//
// The sweep subcommand runs the same grid through the sharded sweep
// runtime: -shard i/n selects every n-th cell (cell seeds derive from the
// global grid index, so any decomposition produces identical numbers),
// finished cells stream to the -jsonl checkpoint as they complete, and
// -resume replays the checkpoint to execute only missing cells after an
// interrupt. -paper-sweep applies the paper-preset sweep configuration
// (fixed base seed, resume on).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/pipeline"
)

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "matrix":
		err = runMatrix(args[1:], os.Stdout)
	case len(args) > 0 && args[0] == "sweep":
		err = runSweep(args[1:], os.Stdout)
	default:
		err = run(args, os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// parseShard parses "i/n" (e.g. "0/4") into shard index and count.
func parseShard(s string) (int, int, error) {
	if s == "" {
		return 0, 1, nil
	}
	part := strings.SplitN(s, "/", 2)
	if len(part) != 2 {
		return 0, 0, fmt.Errorf("shard %q: want i/n (e.g. 0/4)", s)
	}
	i, err1 := strconv.Atoi(part[0])
	n, err2 := strconv.Atoi(part[1])
	if err1 != nil || err2 != nil || n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("shard %q: want 0 <= i < n", s)
	}
	return i, n, nil
}

// runSweep drives the sharded sweep runtime over the scenario grid.
func runSweep(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("advrepro sweep", flag.ContinueOnError)
	preset := fs.String("preset", "quick", "experiment preset: quick or paper")
	shard := fs.String("shard", "", "shard spec i/n (default: the whole grid in one shard)")
	jsonl := fs.String("jsonl", "", "JSONL checkpoint stream for per-cell results")
	resume := fs.Bool("resume", false, "replay the checkpoint and run only missing cells")
	paperSweep := fs.Bool("paper-sweep", false, "apply the paper-preset sweep config (fixed base seed, resume on)")
	scenarios := fs.String("scenarios", "", "comma-separated scenario names (default: full registry)")
	duration := fs.Float64("duration", 0, "override scenario duration in seconds (0 = default)")
	dt := fs.Float64("dt", 0, "override control period in seconds (0 = default)")
	csvPath := fs.String("csv", "", "optional file for the CSV grid of this shard")
	out := fs.String("out", "", "optional file to copy the text report to")
	verbose := fs.Bool("v", false, "log harness progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := presetByName(*preset)
	if err != nil {
		return err
	}
	si, sn, err := parseShard(*shard)
	if err != nil {
		return err
	}

	var cfg eval.SweepConfig
	if *paperSweep {
		cfg = eval.PaperSweepConfig(si, sn, *jsonl)
		if *jsonl == "" {
			cfg.JSONL = fmt.Sprintf("sweep_%s_shard%d_of_%d.jsonl", p.Name, si, sn)
		}
	} else {
		cfg = eval.SweepConfig{Shard: si, NumShards: sn, JSONL: *jsonl, Resume: *resume}
	}
	cfg.Matrix.Duration = *duration
	cfg.Matrix.DT = *dt
	if *scenarios != "" {
		for _, name := range strings.Split(*scenarios, ",") {
			name = strings.TrimSpace(name)
			sc, ok := pipeline.FindScenario(name)
			if !ok {
				return fmt.Errorf("unknown scenario %q (registry: %s)", name, scenarioNames())
			}
			cfg.Matrix.Scenarios = append(cfg.Matrix.Scenarios, sc)
		}
	}

	start := time.Now()
	fmt.Fprintf(stdout, "== advrepro sweep: preset=%s shard=%d/%d jsonl=%s resume=%v ==\n",
		p.Name, cfg.Shard, max(cfg.NumShards, 1), cfg.JSONL, cfg.Resume)
	env := eval.NewEnv(p)
	if *verbose {
		env.Logf = func(format string, a ...any) { log.Printf(format, a...) }
	}
	fmt.Fprintf(stdout, "victims trained in %v; running shard...\n\n", time.Since(start).Round(time.Second))

	rep, err := env.RunSweep(cfg)
	if err != nil {
		return err
	}
	report := rep.Matrix().Format()
	fmt.Fprintln(stdout, report)
	fmt.Fprintf(stdout, "sweep: shard %d/%d ran %d cells (%d resumed) of a %d-cell grid in %v\n",
		rep.Shard, rep.NumShards, len(rep.Cells)-rep.Resumed, rep.Resumed, rep.Total, time.Since(start).Round(time.Second))

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(rep.Matrix().CSV()), 0o644); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	return nil
}

// runMatrix drives the scenario-matrix engine: scenario x attack x defense
// grid over the closed-loop ACC pipeline.
func runMatrix(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("advrepro matrix", flag.ContinueOnError)
	preset := fs.String("preset", "quick", "experiment preset: quick or paper")
	scenarios := fs.String("scenarios", "", "comma-separated scenario names (default: full registry)")
	duration := fs.Float64("duration", 0, "override scenario duration in seconds (0 = default)")
	dt := fs.Float64("dt", 0, "override control period in seconds (0 = default)")
	csvPath := fs.String("csv", "", "optional file for the CSV grid")
	mdPath := fs.String("md", "", "optional file for the markdown grid")
	out := fs.String("out", "", "optional file to copy the text report to")
	verbose := fs.Bool("v", false, "log harness progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := presetByName(*preset)
	if err != nil {
		return err
	}

	cfg := eval.MatrixConfig{Duration: *duration, DT: *dt}
	if *scenarios != "" {
		for _, name := range strings.Split(*scenarios, ",") {
			name = strings.TrimSpace(name)
			sc, ok := pipeline.FindScenario(name)
			if !ok {
				return fmt.Errorf("unknown scenario %q (registry: %s)", name, scenarioNames())
			}
			cfg.Scenarios = append(cfg.Scenarios, sc)
		}
	}

	start := time.Now()
	fmt.Fprintf(stdout, "== advrepro matrix: preset=%s ==\n", p.Name)
	env := eval.NewEnv(p)
	if *verbose {
		env.Logf = func(format string, a ...any) { log.Printf(format, a...) }
	}
	fmt.Fprintf(stdout, "victims trained in %v; running grid...\n\n", time.Since(start).Round(time.Second))

	rep := env.RunMatrix(cfg)
	report := rep.Format()
	fmt.Fprintln(stdout, report)
	fmt.Fprintf(stdout, "matrix: %d cells in %v\n", len(rep.Cells), time.Since(start).Round(time.Second))

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(rep.CSV()), 0o644); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(rep.Markdown()), 0o644); err != nil {
			return fmt.Errorf("write markdown: %w", err)
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	return nil
}

// presetByName resolves the shared -preset flag value.
func presetByName(name string) (eval.Preset, error) {
	switch name {
	case "quick":
		return eval.Quick(), nil
	case "paper":
		return eval.Paper(), nil
	default:
		return eval.Preset{}, fmt.Errorf("unknown preset %q", name)
	}
}

// scenarioNames lists the registry for error messages.
func scenarioNames() string {
	var names []string
	for _, s := range pipeline.Scenarios() {
		names = append(names, s.Name)
	}
	return strings.Join(names, ", ")
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("advrepro", flag.ContinueOnError)
	preset := fs.String("preset", "quick", "experiment preset: quick or paper")
	exp := fs.String("exp", "all", "experiment: table1..table5, fig2, pipeline, ablations, all")
	out := fs.String("out", "", "optional file to copy the report to")
	verbose := fs.Bool("v", false, "log harness progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := presetByName(*preset)
	if err != nil {
		return err
	}

	var sink io.Writer = stdout
	var file *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create report: %w", err)
		}
		file = f
		sink = io.MultiWriter(stdout, f)
	}

	start := time.Now()
	fmt.Fprintf(sink, "== advrepro: preset=%s exp=%s ==\n", p.Name, *exp)
	env := eval.NewEnv(p)
	if *verbose {
		env.Logf = func(format string, a ...any) { log.Printf(format, a...) }
	}
	clean := env.Det.Evaluate(env.SignTestSet, 0.5)
	fmt.Fprintf(sink, "victims: clean detection mAP50=%.2f%% P=%.2f%% R=%.2f%%; regression RMSE=%.2f m (built in %v)\n\n",
		100*clean.MAP50, 100*clean.Precision, 100*clean.Recall, env.Reg.RMSE(env.DriveTest), time.Since(start).Round(time.Second))

	want := func(name string) bool { return *exp == "all" || *exp == name }
	section := func(name string, body func() string) {
		t0 := time.Now()
		fmt.Fprintln(sink, body())
		fmt.Fprintf(sink, "(%s completed in %v)\n\n", name, time.Since(t0).Round(time.Second))
	}

	if want("table1") {
		section("table1", func() string { return env.RunTableI().Format() })
	}
	if want("fig2") {
		section("fig2", func() string { return env.RunFig2().Format() })
	}
	if want("table2") {
		section("table2", func() string { return env.RunTableII().Format() })
	}
	if want("table3") {
		section("table3", func() string { return env.RunTableIII().Format() })
	}
	if want("table4") {
		section("table4", func() string { return env.RunTableIV().Format() })
	}
	if want("table5") {
		section("table5", func() string { return env.RunTableV().Format() })
	}
	if want("pipeline") {
		section("pipeline", func() string { return pipelineReport(env) })
	}
	if want("ablations") {
		section("ablations", func() string { return ablationReport(env) })
	}

	fmt.Fprintf(sink, "total: %v\n", time.Since(start).Round(time.Second))
	if file != nil {
		return file.Close()
	}
	return nil
}

// pipelineReport runs the closed-loop ACC scenario clean, under CAP-Attack,
// and under CAP-Attack with the median-blur defense.
func pipelineReport(env *eval.Env) string {
	var b strings.Builder
	b.WriteString("CLOSED-LOOP ACC (lead brakes at t=4s for 2s)\n")
	b.WriteString(fmt.Sprintf("%-24s %10s %10s %10s\n", "Configuration", "MinGap(m)", "MinTTC(s)", "Collision"))
	for _, row := range eval.PipelineScenarios(env) {
		b.WriteString(fmt.Sprintf("%-24s %10.2f %10.2f %10v\n", row.Name, row.Result.MinGap, ttcStr(row.Result.MinTTC), row.Result.Collision))
	}
	return b.String()
}

func ttcStr(v float64) float64 {
	if v > 999 {
		return 999
	}
	return v
}

// ablationReport exercises the four design-choice ablations.
func ablationReport(env *eval.Env) string {
	var b strings.Builder
	b.WriteString("ABLATIONS\n")
	a, p := env.APGDvsPGD()
	b.WriteString(fmt.Sprintf("Auto-PGD vs plain PGD, near-range induced error: %.2f m vs %.2f m\n", a, p))
	w, c := env.CAPWarmVsCold()
	b.WriteString(fmt.Sprintf("CAP warm-start vs cold-start, mean induced error: %.2f m vs %.2f m\n", w, c))
	eot := env.RP2EOTSweep([]int{1, 4})
	b.WriteString(fmt.Sprintf("RP2 EOT samples {1,4} -> post-attack mAP50: %.2f%%, %.2f%%\n", 100*eot[0], 100*eot[1]))
	steps := env.DiffPIRStepSweep([]int{4, 12})
	b.WriteString(fmt.Sprintf("DiffPIR steps {4,12} -> restored mAP50: %.2f%%, %.2f%%\n", 100*steps[0], 100*steps[1]))
	return b.String()
}
