// Command advrepro reproduces the experiments of "Revisiting Adversarial
// Perception Attacks and Defense Methods on Autonomous Driving Systems"
// (DSN 2025): it trains the victim models, runs the selected experiment
// and prints the paper-shaped result table.
//
// Every subcommand routes through the v2 experiment core (internal/exp):
// a run is a serializable Spec validated against the attack/defense/
// scenario registries, executed under a cancellable context with observer
// sinks streaming per-cell progress.
//
// Usage:
//
//	advrepro run -spec spec.json [-remote http://host:8799] [-reconnects n] [-artifacts dir] [-shard i/n] [-jsonl f] [-resume] [-progress] [-out report.txt] [-csv grid.csv] [-md grid.md]
//	advrepro serve [-addr 127.0.0.1:8799] [-artifacts dir] [-workers n] [-maxruns n] [-warm quick,paper]
//	advrepro dispatch -spec spec.json [-workers pool:2,exec,http://host:8799] [-shards n] [-checkpoints dir] [-resume] [-heartbeat d] [-retries n] [-hedge-after f] [-hedge-factor f] [-strikes n] [-csv grid.csv] [-out report.txt]
//	advrepro merge -spec spec.json [-out report.txt] [-csv grid.csv] shard0.jsonl shard1.jsonl ...
//	advrepro -preset quick|paper -exp table1|table2|table3|table4|table5|fig2|pipeline|ablations|all [-out report.txt]
//	advrepro matrix [-preset quick|paper] [-scenarios a,b,c] [-duration s] [-dt s] [-csv grid.csv] [-md grid.md] [-out report.txt]
//	advrepro sweep [-preset quick|paper] [-shard i/n] [-jsonl cells.jsonl] [-resume] [-paper-sweep] [-scenarios a,b,c] [-duration s] [-dt s] [-csv grid.csv] [-out report.txt]
//
// run executes any committed spec — a paper table, the scenario matrix,
// or one shard of a sweep — and is the universal entrypoint; the matrix
// and sweep subcommands are thin spec-building wrappers kept for
// compatibility. With -remote the spec is submitted to a running daemon
// instead of trained locally; with -artifacts trained victim weights are
// cached on disk and reloaded, skipping training on repeat runs.
// Interrupting a checkpointed sweep (Ctrl-C) stops dispatching promptly
// and leaves a JSONL checkpoint a -resume run completes; every
// interrupted invocation exits non-zero with the cancellation cause.
//
// serve starts the long-lived evaluation daemon (see internal/serve):
// POST /run streams a spec's run as NDJSON events and serves repeat
// submissions from a content-addressed result cache keyed by the
// canonical spec hash. -maxruns bounds concurrent computations: requests
// beyond it are shed with 503 + Retry-After (cache hits and joins of an
// in-flight run are always served).
//
// dispatch fans a grid spec's shards over a worker fleet (in-process
// pool, advrepro-run subprocesses, serve daemons) and recovers from
// worker failure automatically: crashed shards re-dispatch with capped
// exponential backoff and resume from their JSONL lane, stragglers hedge
// to a second worker with first-writer-wins dedup, and repeat offenders
// are quarantined. The merged report is byte-identical to an unsharded
// run of the same spec, no matter the failures (see internal/dispatch).
//
// merge joins the JSONL shard files of a distributed sweep back into the
// combined grid report, verifying full grid coverage and per-cell seed
// consistency against the spec's grid identity — no retraining needed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/exp"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "run":
		err = runSpec(ctx, args[1:], os.Stdout)
	case len(args) > 0 && args[0] == "serve":
		err = runServe(ctx, args[1:], os.Stdout)
	case len(args) > 0 && args[0] == "dispatch":
		err = runDispatch(ctx, args[1:], os.Stdout)
	case len(args) > 0 && args[0] == "merge":
		err = runMerge(args[1:], os.Stdout)
	case len(args) > 0 && args[0] == "matrix":
		err = runMatrix(ctx, args[1:], os.Stdout)
	case len(args) > 0 && args[0] == "sweep":
		err = runSweep(ctx, args[1:], os.Stdout)
	default:
		err = run(ctx, args, os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// parseShard parses "i/n" (e.g. "0/4") into shard index and count.
func parseShard(s string) (int, int, error) {
	if s == "" {
		return 0, 1, nil
	}
	part := strings.SplitN(s, "/", 2)
	if len(part) != 2 {
		return 0, 0, fmt.Errorf("shard %q: want i/n (e.g. 0/4)", s)
	}
	i, err1 := strconv.Atoi(part[0])
	n, err2 := strconv.Atoi(part[1])
	if err1 != nil || err2 != nil || n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("shard %q: want 0 <= i < n", s)
	}
	return i, n, nil
}

// writeOutputs writes the optional report/CSV/markdown files of a result.
func writeOutputs(report, csvPath, mdPath, outPath string, res *exp.Result) error {
	if csvPath != "" {
		if res == nil || res.Matrix == nil {
			return fmt.Errorf("-csv: this run kind has no grid")
		}
		if err := os.WriteFile(csvPath, []byte(res.Matrix.CSV()), 0o644); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
	}
	if mdPath != "" {
		if res == nil || res.Matrix == nil {
			return fmt.Errorf("-md: this run kind has no grid")
		}
		if err := os.WriteFile(mdPath, []byte(res.Matrix.Markdown()), 0o644); err != nil {
			return fmt.Errorf("write markdown: %w", err)
		}
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(report), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	return nil
}

// commonOpts builds the option block the run subcommands share: the
// stderr logger for -v and the stdout progress observer for -progress.
func commonOpts(preset string, verbose, progress bool, stdout io.Writer) []exp.Option {
	opts := []exp.Option{exp.WithPresetName(preset)}
	if verbose {
		opts = append(opts, exp.WithLogger(func(format string, a ...any) { log.Printf(format, a...) }))
	}
	if progress {
		opts = append(opts, exp.WithObserver(&exp.ProgressPrinter{W: stdout}))
	}
	return opts
}

// runSpec is the universal subcommand: execute any spec file.
func runSpec(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("advrepro run", flag.ContinueOnError)
	specPath := fs.String("spec", "", "JSON spec addressing the run (required)")
	remote := fs.String("remote", "", "submit the spec to a running daemon at this base URL instead of training locally")
	reconnects := fs.Int("reconnects", 3, "with -remote: mid-stream reconnect budget before giving up")
	artifacts := fs.String("artifacts", "", "trained-model artifact directory (skip victim training on repeat runs)")
	shard := fs.String("shard", "", "override the sweep shard as i/n (sweep specs only)")
	jsonl := fs.String("jsonl", "", "override the sweep JSONL checkpoint path")
	resume := fs.Bool("resume", false, "force checkpoint resume on (sweep specs only)")
	progress := fs.Bool("progress", false, "stream per-cell progress lines to stdout")
	workers := fs.Int("workers", 0, "cap the worker pool (0 = GOMAXPROCS)")
	csvPath := fs.String("csv", "", "optional file for the CSV grid (matrix/sweep specs)")
	mdPath := fs.String("md", "", "optional file for the markdown grid")
	out := fs.String("out", "", "optional file to copy the text report to")
	verbose := fs.Bool("v", false, "log harness progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("run: -spec is required")
	}
	buf, err := os.ReadFile(*specPath)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	spec, err := exp.ParseSpec(buf)
	if err != nil {
		return err
	}
	if *shard != "" {
		if spec.Kind != exp.KindSweep {
			return fmt.Errorf("run: -shard applies to sweep specs, not %q", spec.Kind)
		}
		si, sn, err := parseShard(*shard)
		if err != nil {
			return err
		}
		if spec.Sweep == nil {
			spec.Sweep = &exp.SweepSpec{}
		}
		spec.Sweep.Shard, spec.Sweep.NumShards = si, sn
	}
	if *jsonl != "" {
		if spec.Sweep == nil {
			spec.Sweep = &exp.SweepSpec{}
		}
		spec.Sweep.JSONL = *jsonl
	}
	if *resume {
		if spec.Sweep == nil {
			spec.Sweep = &exp.SweepSpec{}
		}
		spec.Sweep.Resume = true
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	if *remote != "" {
		return runRemoteSpec(ctx, *remote, spec, *progress, *reconnects, *csvPath, *mdPath, *out, stdout)
	}

	opts := append(commonOpts(spec.Preset, *verbose, *progress, stdout), exp.WithWorkers(*workers))
	if *artifacts != "" {
		opts = append(opts, exp.WithArtifactDir(*artifacts))
	}

	start := time.Now()
	fmt.Fprintf(stdout, "== advrepro run: spec=%s kind=%s preset=%s ==\n", *specPath, spec.Kind, specPreset(spec))
	x, err := exp.New(ctx, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "victims trained in %v; running spec...\n\n", time.Since(start).Round(time.Second))

	res, err := x.Run(ctx, spec)
	if err = interruptErr(ctx, err); err != nil {
		if ctx.Err() != nil && spec.Sweep != nil && spec.Sweep.JSONL != "" {
			fmt.Fprintf(stdout, "run cancelled; finished cells are checkpointed in %s — rerun with -resume to complete\n", spec.Sweep.JSONL)
		}
		return err
	}
	fmt.Fprintln(stdout, res.Text)
	fmt.Fprintf(stdout, "run: kind=%s done in %v\n", spec.Kind, time.Since(start).Round(time.Second))
	return writeOutputs(res.Text, *csvPath, *mdPath, *out, res)
}

// interruptErr surfaces an interrupt the runner absorbed: the table
// runners finish their in-flight section and return nil even when the
// context was cancelled mid-run, but an interrupted invocation must
// still exit non-zero with the cause visible. Grid runners return the
// context error themselves; this helper covers every other path.
func interruptErr(ctx context.Context, err error) error {
	if err == nil && ctx.Err() != nil {
		return fmt.Errorf("cancelled mid-run: %w", ctx.Err())
	}
	return err
}

// specPreset names the spec's preset for display.
func specPreset(s exp.Spec) string {
	if s.Preset == "" {
		return "quick"
	}
	return s.Preset
}

// runMerge joins sweep shard JSONL files against a spec's grid identity.
func runMerge(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("advrepro merge", flag.ContinueOnError)
	specPath := fs.String("spec", "", "JSON spec describing the sharded grid (required)")
	csvPath := fs.String("csv", "", "optional file for the merged CSV grid")
	out := fs.String("out", "", "optional file to copy the text report to")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("merge: -spec is required")
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("merge: give the shard JSONL files as arguments")
	}
	buf, err := os.ReadFile(*specPath)
	if err != nil {
		return fmt.Errorf("merge: %w", err)
	}
	spec, err := exp.ParseSpec(buf)
	if err != nil {
		return err
	}

	rep, err := exp.MergeSpec(spec, paths)
	if err != nil {
		return err
	}
	report := rep.Format()
	fmt.Fprintln(stdout, report)
	fmt.Fprintf(stdout, "merge: %d cells assembled from %d shard files\n", len(rep.Cells), len(paths))
	return writeOutputs(report, *csvPath, "", *out, &exp.Result{Matrix: &rep})
}

// runSweep drives the sharded sweep runtime over the scenario grid: a
// spec-building wrapper over the experiment core.
func runSweep(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("advrepro sweep", flag.ContinueOnError)
	preset := fs.String("preset", "quick", "experiment preset: quick or paper")
	shard := fs.String("shard", "", "shard spec i/n (default: the whole grid in one shard)")
	jsonl := fs.String("jsonl", "", "JSONL checkpoint stream for per-cell results")
	resume := fs.Bool("resume", false, "replay the checkpoint and run only missing cells")
	paperSweep := fs.Bool("paper-sweep", false, "apply the paper-preset sweep config (fixed base seed, resume on)")
	scenarios := fs.String("scenarios", "", "comma-separated scenario names (default: full registry)")
	duration := fs.Float64("duration", 0, "override scenario duration in seconds (0 = default)")
	dt := fs.Float64("dt", 0, "override control period in seconds (0 = default)")
	progress := fs.Bool("progress", false, "stream per-cell progress lines to stdout")
	csvPath := fs.String("csv", "", "optional file for the CSV grid of this shard")
	out := fs.String("out", "", "optional file to copy the text report to")
	verbose := fs.Bool("v", false, "log harness progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	si, sn, err := parseShard(*shard)
	if err != nil {
		return err
	}
	spec := exp.Spec{
		Kind:   exp.KindSweep,
		Preset: *preset,
		Matrix: &exp.MatrixSpec{Duration: *duration, DT: *dt},
		Sweep:  &exp.SweepSpec{Shard: si, NumShards: sn, JSONL: *jsonl, Resume: *resume},
	}
	if *paperSweep {
		spec.Matrix.BaseSeed = 424243
		spec.Sweep.Resume = true
		if *jsonl == "" {
			spec.Sweep.JSONL = fmt.Sprintf("sweep_%s_shard%d_of_%d.jsonl", specPreset(spec), si, sn)
		}
	}
	if *scenarios != "" {
		spec.Matrix.Scenarios = splitNames(*scenarios)
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	opts := commonOpts(*preset, *verbose, *progress, stdout)

	start := time.Now()
	fmt.Fprintf(stdout, "== advrepro sweep: preset=%s shard=%d/%d jsonl=%s resume=%v ==\n",
		specPreset(spec), spec.Sweep.Shard, max(spec.Sweep.NumShards, 1), spec.Sweep.JSONL, spec.Sweep.Resume)
	x, err := exp.New(ctx, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "victims trained in %v; running shard...\n\n", time.Since(start).Round(time.Second))

	res, err := x.Run(ctx, spec)
	if err = interruptErr(ctx, err); err != nil {
		if ctx.Err() != nil && spec.Sweep.JSONL != "" {
			fmt.Fprintf(stdout, "sweep cancelled; finished cells are checkpointed in %s — rerun with -resume to complete\n", spec.Sweep.JSONL)
		}
		return err
	}
	rep := res.Sweep
	fmt.Fprintln(stdout, res.Text)
	fmt.Fprintf(stdout, "sweep: shard %d/%d ran %d cells (%d resumed) of a %d-cell grid in %v\n",
		rep.Shard, rep.NumShards, len(rep.Cells)-rep.Resumed, rep.Resumed, rep.Total, time.Since(start).Round(time.Second))
	return writeOutputs(res.Text, *csvPath, "", *out, res)
}

// runMatrix drives the scenario-matrix engine: a spec-building wrapper
// over the experiment core.
func runMatrix(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("advrepro matrix", flag.ContinueOnError)
	preset := fs.String("preset", "quick", "experiment preset: quick or paper")
	scenarios := fs.String("scenarios", "", "comma-separated scenario names (default: full registry)")
	attacks := fs.String("attacks", "", "comma-separated attack axis names (default: None,CAP-Attack,FGSM)")
	defenses := fs.String("defenses", "", "comma-separated defense axis names (default: None,Median Blurring,DiffPIR)")
	duration := fs.Float64("duration", 0, "override scenario duration in seconds (0 = default)")
	dt := fs.Float64("dt", 0, "override control period in seconds (0 = default)")
	progress := fs.Bool("progress", false, "stream per-cell progress lines to stdout")
	csvPath := fs.String("csv", "", "optional file for the CSV grid")
	mdPath := fs.String("md", "", "optional file for the markdown grid")
	out := fs.String("out", "", "optional file to copy the text report to")
	verbose := fs.Bool("v", false, "log harness progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := exp.Spec{
		Kind:   exp.KindMatrix,
		Preset: *preset,
		Matrix: &exp.MatrixSpec{Duration: *duration, DT: *dt},
	}
	if *scenarios != "" {
		spec.Matrix.Scenarios = splitNames(*scenarios)
	}
	if *attacks != "" {
		spec.Matrix.Attacks = splitNames(*attacks)
	}
	if *defenses != "" {
		spec.Matrix.Defenses = splitNames(*defenses)
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	opts := commonOpts(*preset, *verbose, *progress, stdout)

	start := time.Now()
	fmt.Fprintf(stdout, "== advrepro matrix: preset=%s ==\n", specPreset(spec))
	x, err := exp.New(ctx, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "victims trained in %v; running grid...\n\n", time.Since(start).Round(time.Second))

	res, err := x.Run(ctx, spec)
	if err = interruptErr(ctx, err); err != nil {
		return err
	}
	fmt.Fprintln(stdout, res.Text)
	fmt.Fprintf(stdout, "matrix: %d cells in %v\n", len(res.Matrix.Cells), time.Since(start).Round(time.Second))
	return writeOutputs(res.Text, *csvPath, *mdPath, *out, res)
}

// splitNames splits a comma-separated flag value, trimming whitespace.
func splitNames(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// sectionKinds maps the legacy -exp names to spec kinds, in report order.
var sectionKinds = []string{
	exp.KindTable1, exp.KindFig2, exp.KindTable2, exp.KindTable3,
	exp.KindTable4, exp.KindTable5, exp.KindPipeline, exp.KindAblations,
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("advrepro", flag.ContinueOnError)
	preset := fs.String("preset", "quick", "experiment preset: quick or paper")
	expFlag := fs.String("exp", "all", "experiment: table1..table5, fig2, pipeline, ablations, all")
	out := fs.String("out", "", "optional file to copy the report to")
	verbose := fs.Bool("v", false, "log harness progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := func(name string) bool { return *expFlag == "all" || *expFlag == name }
	known := *expFlag == "all"
	for _, k := range sectionKinds {
		if *expFlag == k {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q (want table1..table5, fig2, pipeline, ablations or all)", *expFlag)
	}

	var sink io.Writer = stdout
	var file *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create report: %w", err)
		}
		file = f
		sink = io.MultiWriter(stdout, f)
	}

	opts := []exp.Option{exp.WithPresetName(*preset)}
	if *verbose {
		opts = append(opts, exp.WithLogger(func(format string, a ...any) { log.Printf(format, a...) }))
	}

	start := time.Now()
	fmt.Fprintf(sink, "== advrepro: preset=%s exp=%s ==\n", *preset, *expFlag)
	x, err := exp.New(ctx, opts...)
	if err != nil {
		return err
	}
	env := x.Env()
	clean := env.Det.Evaluate(env.SignTestSet, 0.5)
	fmt.Fprintf(sink, "victims: clean detection mAP50=%.2f%% P=%.2f%% R=%.2f%%; regression RMSE=%.2f m (built in %v)\n\n",
		100*clean.MAP50, 100*clean.Precision, 100*clean.Recall, env.Reg.RMSE(env.DriveTest), time.Since(start).Round(time.Second))

	for _, kind := range sectionKinds {
		if !want(kind) {
			continue
		}
		t0 := time.Now()
		res, err := x.Run(ctx, exp.Spec{Kind: kind, Preset: *preset})
		if err = interruptErr(ctx, err); err != nil {
			return err
		}
		fmt.Fprintln(sink, res.Text)
		fmt.Fprintf(sink, "(%s completed in %v)\n\n", kind, time.Since(t0).Round(time.Second))
	}

	fmt.Fprintf(sink, "total: %v\n", time.Since(start).Round(time.Second))
	if file != nil {
		return file.Close()
	}
	return nil
}
