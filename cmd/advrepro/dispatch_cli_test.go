package main

import (
	"testing"
)

func TestParseWorkerList(t *testing.T) {
	specs, err := parseWorkerList("pool:2, exec ,exec:./bin/advrepro,http://h:8799,https://h2")
	if err != nil {
		t.Fatal(err)
	}
	want := []workerSpec{
		{kind: "pool", count: 2},
		{kind: "exec"},
		{kind: "exec", value: "./bin/advrepro"},
		{kind: "http", value: "http://h:8799"},
		{kind: "http", value: "https://h2"},
	}
	if len(specs) != len(want) {
		t.Fatalf("parsed %d workers, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Fatalf("worker %d = %+v, want %+v", i, specs[i], want[i])
		}
	}

	// A bare "pool" is one in-process worker.
	specs, err = parseWorkerList("pool")
	if err != nil || len(specs) != 1 || specs[0].count != 1 {
		t.Fatalf("bare pool: %+v, %v", specs, err)
	}

	for _, bad := range []string{"", "pool:0", "pool:x", "exec:", "ftp://h", "worker"} {
		if _, err := parseWorkerList(bad); err == nil {
			t.Fatalf("parseWorkerList(%q) accepted", bad)
		}
	}
}
