package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestInterruptErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	if err := interruptErr(ctx, nil); err != nil {
		t.Fatalf("live context produced %v", err)
	}
	sentinel := fmt.Errorf("runner error")
	if err := interruptErr(ctx, sentinel); err != sentinel {
		t.Fatalf("existing error rewritten to %v", err)
	}
	cancel()
	err := interruptErr(ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context produced %v, want context.Canceled", err)
	}
	if err := interruptErr(ctx, sentinel); err != sentinel {
		t.Fatalf("cancellation must not mask the runner's own error, got %v", err)
	}
}

// cancelOnMatch is an io.Writer that cancels a context the first time a
// marker string flows through it — the deterministic stand-in for a
// user pressing Ctrl-C mid-run.
type cancelOnMatch struct {
	mu     sync.Mutex
	w      io.Writer
	marker string
	cancel context.CancelFunc
	fired  bool
}

func (c *cancelOnMatch) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.fired && strings.Contains(string(p), c.marker) {
		c.fired = true
		c.cancel()
	}
	return c.w.Write(p)
}

// TestRunSpecInterruptExitsNonZero is the SIGINT regression test: a run
// whose context cancels mid-grid must return a context error (non-zero
// exit through main's log.Fatal), never a silent success. The context is
// cancelled deterministically by the first -progress cell line; with
// -workers 1 the serial dispatch loop observes the cancellation before
// the next cell.
func TestRunSpecInterruptExitsNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the quick preset (~1 min)")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	stdout := &cancelOnMatch{w: &buf, marker: "] cell ", cancel: cancel}

	err := runSpec(ctx, []string{
		"-spec", "../../specs/quick_matrix.json",
		"-progress", "-workers", "1",
	}, stdout)
	if err == nil {
		t.Fatalf("interrupted run returned nil; output:\n%s", buf.String())
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if !stdout.fired {
		t.Fatal("test never observed a progress cell line")
	}
	// The run was cut short: the 27-cell grid must not have completed.
	if n := strings.Count(buf.String(), "] cell "); n >= 27 {
		t.Fatalf("run executed all %d cells despite cancellation", n)
	}
}
