package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dispatch"
	"repro/internal/exp"
)

// runDispatch is the fleet orchestrator subcommand: fan a sweep spec's
// shards over a worker fleet, survive worker failures (retry with
// backoff, hedge stragglers, quarantine repeat offenders), and emit a
// merged report byte-identical to an unsharded run.
func runDispatch(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("advrepro dispatch", flag.ContinueOnError)
	specPath := fs.String("spec", "", "JSON spec addressing the grid (required; matrix or sweep kind)")
	workers := fs.String("workers", "pool:2", "comma-separated worker fleet: pool:N (in-process), exec[:BIN] (subprocess advrepro run), http://host:port (serve daemon)")
	shards := fs.Int("shards", 0, "grid decomposition width (0 = one shard per worker)")
	checkpoints := fs.String("checkpoints", ".dispatch", "directory for per-shard JSONL lane files")
	transport := fs.String("transport", "fs", "checkpoint transport: fs (local only), mirror:DIR (per-record replica tree), store:DIR|URL (object-store segments, local dir or serve daemon)")
	resume := fs.Bool("resume", false, "recover a crashed dispatch session from its lane files (or their transport replica)")
	heartbeat := fs.Duration("heartbeat", 2*time.Minute, "per-attempt liveness timeout (no event for this long = presumed hung)")
	retries := fs.Int("retries", 4, "max dispatch attempts per shard")
	hedgeAfter := fs.Float64("hedge-after", 0.5, "completed-shard fraction that arms straggler hedging (>=1 disables)")
	hedgeFactor := fs.Float64("hedge-factor", 2.0, "straggler threshold as a multiple of the median shard duration")
	strikes := fs.Int("strikes", 2, "failed attempts before a worker is quarantined")
	artifacts := fs.String("artifacts", "", "trained-model artifact directory (pool/exec workers)")
	inject := fs.String("inject", "", "fault-injection directives, fault:worker[@N] (kill|hang|dial|dup|torn) — testing only")
	injectStore := fs.String("injectstore", "", "store-fault directives, fault[:N] (outage|torn|dup) — store transport only, testing only")
	progress := fs.Bool("progress", false, "stream per-cell progress lines to stdout")
	csvPath := fs.String("csv", "", "optional file for the merged CSV grid")
	mdPath := fs.String("md", "", "optional file for the merged markdown grid")
	out := fs.String("out", "", "optional file to copy the text report to")
	reconnects := fs.Int("reconnects", 3, "mid-stream reconnect budget per attempt (http workers)")
	verbose := fs.Bool("v", false, "log dispatch decisions to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("dispatch: -spec is required")
	}
	spec, err := loadSpecFile(*specPath)
	if err != nil {
		return err
	}
	if spec.Kind != exp.KindSweep && spec.Kind != exp.KindMatrix {
		return fmt.Errorf("dispatch: spec kind %q has no grid to shard", spec.Kind)
	}

	wspecs, err := parseWorkerList(*workers)
	if err != nil {
		return err
	}
	ckpt, err := dispatch.ParseCheckpointTransport(*transport)
	if err != nil {
		return err
	}
	if *injectStore != "" {
		injs, err := dispatch.ParseStoreInjections(*injectStore)
		if err != nil {
			return err
		}
		if err := dispatch.ApplyStoreInjections(ckpt, injs); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "dispatch: store fault injection armed: %s\n", *injectStore)
	}
	logf := func(format string, a ...any) {}
	if *verbose {
		logf = func(format string, a ...any) { log.Printf(format, a...) }
	}

	start := time.Now()
	fleet, err := buildWorkers(ctx, wspecs, workerBuildConfig{
		preset: spec.Preset, artifacts: *artifacts,
		reconnects: *reconnects, verbose: *verbose, logf: logf,
		ckpt: ckpt,
	})
	if err != nil {
		return err
	}
	if *inject != "" {
		injs, err := dispatch.ParseInjections(*inject)
		if err != nil {
			return err
		}
		if err := dispatch.ApplyInjections(fleet, injs); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "dispatch: fault injection armed: %s\n", *inject)
	}

	cfg := dispatch.Config{
		Spec: spec, Workers: fleet,
		NumShards: *shards, Dir: *checkpoints, Resume: *resume,
		Checkpoints: ckpt,
		Heartbeat:   *heartbeat, MaxAttempts: *retries,
		HedgeAfter: *hedgeAfter, HedgeFactor: *hedgeFactor,
		MaxStrikes: *strikes, Logf: logf,
	}
	if *progress {
		cfg.Observer = &exp.ProgressPrinter{W: stdout}
	}

	fmt.Fprintf(stdout, "== advrepro dispatch: spec=%s kind=%s workers=%d shards=%d checkpoints=%s transport=%s ==\n",
		*specPath, spec.Kind, len(fleet), cfg.NumShards, *checkpoints, ckpt)
	rep, err := dispatch.Run(ctx, cfg)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(stdout, "dispatch cancelled; finished cells are checkpointed in %s — rerun with -resume to complete\n", *checkpoints)
		}
		return err
	}

	fmt.Fprintln(stdout, rep.Text)
	quarantined := "none"
	if len(rep.Quarantined) > 0 {
		quarantined = strings.Join(rep.Quarantined, ",")
	}
	fmt.Fprintf(stdout, "dispatch: %d cells over %d shards in %v (%d resumed, %d fetched via %s, %d retries, %d hedges, quarantined: %s)\n",
		len(rep.Matrix.Cells), rep.Shards, time.Since(start).Round(time.Second),
		rep.Resumed, rep.Fetched, rep.Transport, rep.Retries, rep.Hedges, quarantined)
	return writeOutputs(rep.Text, *csvPath, *mdPath, *out, &exp.Result{Matrix: &rep.Matrix})
}

// loadSpecFile reads and validates a spec file.
func loadSpecFile(path string) (exp.Spec, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return exp.Spec{}, fmt.Errorf("read spec: %w", err)
	}
	return exp.ParseSpec(buf)
}

// workerSpec is one parsed -workers entry.
type workerSpec struct {
	kind  string // "pool", "exec", "http"
	count int    // pool slot count
	value string // exec binary path or http base URL
}

// parseWorkerList parses the -workers fleet grammar: pool:N spawns N
// in-process workers over one shared experiment, exec[:BIN] a subprocess
// worker (default: this binary), and an http(s):// URL a serve-daemon
// worker. Entries are comma-separated and compose freely.
func parseWorkerList(s string) ([]workerSpec, error) {
	var out []workerSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		switch {
		case part == "pool":
			out = append(out, workerSpec{kind: "pool", count: 1})
		case strings.HasPrefix(part, "pool:"):
			n, err := strconv.Atoi(part[len("pool:"):])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("dispatch: -workers %q: pool wants a positive count", part)
			}
			out = append(out, workerSpec{kind: "pool", count: n})
		case part == "exec":
			out = append(out, workerSpec{kind: "exec"})
		case strings.HasPrefix(part, "exec:"):
			bin := part[len("exec:"):]
			if bin == "" {
				return nil, fmt.Errorf("dispatch: -workers %q: exec wants a binary path", part)
			}
			out = append(out, workerSpec{kind: "exec", value: bin})
		case strings.HasPrefix(part, "http://"), strings.HasPrefix(part, "https://"):
			out = append(out, workerSpec{kind: "http", value: part})
		default:
			return nil, fmt.Errorf("dispatch: -workers %q: want pool:N, exec[:BIN] or http://host:port", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dispatch: -workers names no workers")
	}
	return out, nil
}

// workerBuildConfig carries the environment worker construction needs.
type workerBuildConfig struct {
	preset     string
	artifacts  string
	reconnects int
	verbose    bool
	logf       func(format string, a ...any)
	ckpt       dispatch.CheckpointTransport
}

// buildWorkers materialises a parsed fleet: pool entries share ONE
// locally trained experiment (victims train once, each slot is a worker
// over it), exec entries spawn `advrepro run` subprocesses, http entries
// stream from serve daemons.
func buildWorkers(ctx context.Context, specs []workerSpec, bc workerBuildConfig) ([]dispatch.Worker, error) {
	var fleet []dispatch.Worker
	var pool *exp.Experiment
	for _, ws := range specs {
		switch ws.kind {
		case "pool":
			if pool == nil {
				opts := []exp.Option{exp.WithPresetName(bc.preset)}
				if bc.verbose {
					opts = append(opts, exp.WithLogger(bc.logf))
				}
				if bc.artifacts != "" {
					opts = append(opts, exp.WithArtifactDir(bc.artifacts))
				}
				x, err := exp.New(ctx, opts...)
				if err != nil {
					return nil, err
				}
				pool = x
			}
			for i := 0; i < ws.count; i++ {
				fleet = append(fleet, dispatch.Worker{
					Name:      fmt.Sprintf("pool%d", len(fleet)),
					Transport: &dispatch.PoolTransport{X: pool},
				})
			}
		case "exec":
			var args []string
			if bc.artifacts != "" {
				args = append(args, "-artifacts", bc.artifacts)
			}
			fleet = append(fleet, dispatch.Worker{
				Name:      fmt.Sprintf("exec%d", len(fleet)),
				Transport: &dispatch.ExecTransport{Binary: ws.value, Args: args, Checkpoints: bc.ckpt},
			})
		case "http":
			fleet = append(fleet, dispatch.Worker{
				Name: ws.value,
				Transport: &dispatch.HTTPTransport{
					Base: ws.value, Reconnects: bc.reconnects, Logf: bc.logf,
				},
			})
		}
	}
	return fleet, nil
}
