package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/serve"
)

// runServe starts the evaluation daemon: an HTTP server over the v2
// experiment core that validates posted specs, streams run progress as
// NDJSON, deduplicates concurrent identical submissions, and answers
// repeat queries from the content-addressed result cache.
func runServe(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("advrepro serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8799", "listen address")
	artifacts := fs.String("artifacts", "", "trained-model artifact directory (warm environment starts)")
	workers := fs.Int("workers", 0, "cap each runner's worker pool (0 = GOMAXPROCS)")
	warm := fs.String("warm", "", "comma-separated presets to build before accepting traffic")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := serve.New(ctx, serve.Config{
		ArtifactDir: *artifacts,
		Workers:     *workers,
		Logf:        func(format string, a ...any) { log.Printf(format, a...) },
	})
	for _, preset := range splitNames(*warm) {
		log.Printf("serve: warming %s runner", preset)
		if err := srv.Warm(ctx, preset); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintf(stdout, "advrepro serve: listening on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful stop: the serving core's context is already cancelled,
		// which aborts in-flight runs and ends their streams.
		fmt.Fprintln(stdout, "advrepro serve: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(shCtx)
	}
}

// runRemoteSpec submits a spec to a running daemon and renders its
// NDJSON stream: progress lines (with -progress), the cache verdict, and
// the result text. The wire payload carries the same report a local run
// prints, so -out/-csv work identically; only -md needs the local grid.
func runRemoteSpec(ctx context.Context, remote string, spec exp.Spec, progress bool, csvPath, mdPath, outPath string, stdout io.Writer) error {
	if mdPath != "" {
		return fmt.Errorf("run: -md needs a local run (the wire payload carries text and CSV only)")
	}
	body, err := spec.JSON()
	if err != nil {
		return err
	}
	url := strings.TrimRight(remote, "/") + "/run"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("run: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 32<<20) // result payloads carry full reports
	var payload *serve.ResultPayload
	cacheHit := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev serve.WireEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("run: bad stream line %q: %w", line, err)
		}
		switch ev.Event {
		case "error":
			return fmt.Errorf("run: remote: %s", ev.Err)
		case "cache":
			cacheHit = ev.Hit
		case "result":
			var p serve.ResultPayload
			if err := json.Unmarshal(line, &p); err != nil {
				return fmt.Errorf("run: bad result payload: %w", err)
			}
			payload = &p
		default:
			if progress {
				printWireProgress(stdout, ev)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("run: stream: %w", err)
	}
	if payload == nil {
		return fmt.Errorf("run: stream ended without a result (server gone mid-run?)")
	}

	verdict := "computed"
	if cacheHit {
		verdict = "cache hit (zero compute)"
	}
	fmt.Fprintf(stdout, "remote result %s: %s\n\n", payload.Key[:12], verdict)
	fmt.Fprintln(stdout, payload.Text)
	if csvPath != "" {
		if payload.CSV == "" {
			return fmt.Errorf("-csv: this run kind has no grid")
		}
		if err := os.WriteFile(csvPath, []byte(payload.CSV), 0o644); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(payload.Text), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	return nil
}

// printWireProgress renders one streamed event in the local -progress
// line format, so remote and local runs read alike.
func printWireProgress(w io.Writer, ev serve.WireEvent) {
	switch ev.Event {
	case "run-start":
		fmt.Fprintf(w, "run: %d cells\n", ev.Total)
	case "cell-done":
		if ev.Cell == nil {
			return
		}
		status := "ok"
		minGap := 0.0
		if ev.Metrics != nil {
			if ev.Metrics.Collision {
				status = "COLLISION"
			}
			minGap = float64(ev.Metrics.MinGap)
		}
		fmt.Fprintf(w, "[%d/%d] cell %d  %s / %s / %s  min-gap %.2f m  %s\n",
			ev.Done, ev.Total, ev.Cell.Index, ev.Cell.Scenario, ev.Cell.Attack, ev.Cell.Defense, minGap, status)
	case "run-done":
		if ev.Err != "" {
			fmt.Fprintf(w, "run stopped: %s\n", ev.Err)
			return
		}
		fmt.Fprintf(w, "run complete: %d grid cells\n", ev.Total)
	case "log":
		fmt.Fprintf(w, "remote: %s\n", ev.Msg)
	}
}
