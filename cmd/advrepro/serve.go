package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/exp"
	"repro/internal/serve"
)

// runServe starts the evaluation daemon: an HTTP server over the v2
// experiment core that validates posted specs, streams run progress as
// NDJSON, deduplicates concurrent identical submissions, and answers
// repeat queries from the content-addressed result cache.
func runServe(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("advrepro serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8799", "listen address")
	artifacts := fs.String("artifacts", "", "trained-model artifact directory (warm environment starts)")
	workers := fs.Int("workers", 0, "cap each runner's worker pool (0 = GOMAXPROCS)")
	maxRuns := fs.Int("maxruns", 0, "bound concurrent computations; extra new runs get 503 + Retry-After (0 = unbounded)")
	warm := fs.String("warm", "", "comma-separated presets to build before accepting traffic")
	cacheDir := fs.String("cachedir", "", "disk-backed result cache directory (persists across daemon restarts; empty = in-memory)")
	storeDir := fs.String("storedir", "", "object-store directory backing /store (lane checkpoint segments; empty = in-memory)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logf := func(format string, a ...any) { log.Printf(format, a...) }
	cfg := serve.Config{
		ArtifactDir: *artifacts,
		Workers:     *workers,
		MaxRuns:     *maxRuns,
		Logf:        logf,
	}
	if *cacheDir != "" {
		dc, err := serve.NewDiskCache(*cacheDir, logf)
		if err != nil {
			return err
		}
		log.Printf("serve: disk cache at %s (%d entries)", *cacheDir, dc.Len())
		cfg.Cache = dc
	}
	if *storeDir != "" {
		cfg.Store = serve.NewDirStore(*storeDir)
		log.Printf("serve: object store at %s", *storeDir)
	}
	srv := serve.New(ctx, cfg)
	for _, preset := range splitNames(*warm) {
		log.Printf("serve: warming %s runner", preset)
		if err := srv.Warm(ctx, preset); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintf(stdout, "advrepro serve: listening on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful stop: the serving core's context is already cancelled,
		// which aborts in-flight runs and ends their streams.
		fmt.Fprintln(stdout, "advrepro serve: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(shCtx)
	}
}

// runRemoteSpec submits a spec to a running daemon and renders its
// NDJSON stream: progress lines (with -progress), the cache verdict, and
// the result text. The stream reconnects through transient drops (dial
// failures, mid-stream disconnects, 503 shedding) up to the -reconnects
// budget, surfacing each attempt; the daemon's single-flight dedup makes
// a reconnect rejoin the same run or land a free cache hit. The wire
// payload carries the same report a local run prints, so -out/-csv work
// identically; only -md needs the local grid.
func runRemoteSpec(ctx context.Context, remote string, spec exp.Spec, progress bool, reconnects int, csvPath, mdPath, outPath string, stdout io.Writer) error {
	if mdPath != "" {
		return fmt.Errorf("run: -md needs a local run (the wire payload carries text and CSV only)")
	}
	body, err := spec.JSON()
	if err != nil {
		return err
	}
	payload, cacheHit, err := serve.StreamSpec(ctx, remote, body, serve.StreamConfig{
		MaxReconnects: reconnects,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stdout, "run: "+format+"\n", a...)
		},
		OnEvent: func(ev serve.WireEvent) error {
			if progress {
				printWireProgress(stdout, ev)
			}
			return nil
		},
	})
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}

	verdict := "computed"
	if cacheHit {
		verdict = "cache hit (zero compute)"
	}
	fmt.Fprintf(stdout, "remote result %s: %s\n\n", payload.Key[:12], verdict)
	fmt.Fprintln(stdout, payload.Text)
	if csvPath != "" {
		if payload.CSV == "" {
			return fmt.Errorf("-csv: this run kind has no grid")
		}
		if err := os.WriteFile(csvPath, []byte(payload.CSV), 0o644); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(payload.Text), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	return nil
}

// printWireProgress renders one streamed event in the local -progress
// line format, so remote and local runs read alike.
func printWireProgress(w io.Writer, ev serve.WireEvent) {
	switch ev.Event {
	case "run-start":
		fmt.Fprintf(w, "run: %d cells\n", ev.Total)
	case "cell-done":
		if ev.Cell == nil {
			return
		}
		status := "ok"
		minGap := 0.0
		if ev.Metrics != nil {
			if ev.Metrics.Collision {
				status = "COLLISION"
			}
			minGap = float64(ev.Metrics.MinGap)
		}
		fmt.Fprintf(w, "[%d/%d] cell %d  %s / %s / %s  min-gap %.2f m  %s\n",
			ev.Done, ev.Total, ev.Cell.Index, ev.Cell.Scenario, ev.Cell.Attack, ev.Cell.Defense, minGap, status)
	case "run-done":
		if ev.Err != "" {
			fmt.Fprintf(w, "run stopped: %s\n", ev.Err)
			return
		}
		fmt.Fprintf(w, "run complete: %d grid cells\n", ev.Total)
	case "log":
		fmt.Fprintf(w, "remote: %s\n", ev.Msg)
	}
}
