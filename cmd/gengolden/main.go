// Command gengolden regenerates the pinned golden outputs the experiment
// redesign tests compare the legacy entrypoints against
// (internal/eval/testdata/golden_*). The goldens were produced by the
// pre-redesign runners; regenerate them ONLY when a deliberate numeric
// change is being made, never to paper over an accidental divergence.
//
// Usage: go run ./cmd/gengolden
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/eval"
	"repro/internal/pipeline"
)

// microPreset mirrors the eval test suite's preset exactly: the golden
// files pin the outputs the tests recompute under the same configuration.
func microPreset() eval.Preset {
	return eval.Preset{
		Name:      "micro",
		SignTrain: 40, SignTest: 12,
		DriveTrain: 50, DrivePerBucket: 3,
		DetEpochs: 4, RegEpochs: 4,
		AdvEpochs: 1, ContrastiveEpochs: 1,
		DiffusionSteps: 10, DiffPIRSteps: 3,
		APGDSteps: 4, SimBASteps: 20, RP2Iters: 4,
		Seed: 5,
	}
}

func main() {
	dir := filepath.Join("internal", "eval", "testdata")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	env := eval.NewEnv(microPreset())

	write := func(name, content string) {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
	}

	write("golden_table1.txt", env.RunTableI().Format())
	write("golden_fig2.txt", env.RunFig2().Format())

	gentle, ok := pipeline.FindScenario("gentle-brake")
	if !ok {
		log.Fatal("gentle-brake missing from registry")
	}
	cruise, ok := pipeline.FindScenario("highway-cruise")
	if !ok {
		log.Fatal("highway-cruise missing from registry")
	}
	cfg := eval.MatrixConfig{
		Scenarios: []pipeline.Scenario{gentle, cruise},
		Duration:  0.8, DT: 0.1,
		BaseSeed: 4242,
	}
	write("golden_matrix.csv", env.RunMatrix(cfg).CSV())
}
