// Command scenegen writes sample images from the two synthetic dataset
// generators (the reproduction's analogue of the paper's Fig. 1) plus an
// attacked/defended triptych for visual inspection.
//
// Usage:
//
//	scenegen -out ./samples -n 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/regress"
	"repro/internal/scene"
	"repro/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	out := flag.String("out", "samples", "output directory")
	n := flag.Int("n", 4, "examples per dataset")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("mkdir: %w", err)
	}
	rng := xrand.New(*seed)

	// Fig. 1 analogue: dataset examples.
	signCfg := scene.DefaultSignConfig()
	for i := 0; i < *n; i++ {
		sc := scene.GenerateSign(rng.Split(), signCfg)
		path := filepath.Join(*out, fmt.Sprintf("sign_%02d.png", i))
		if err := sc.Img.SavePNG(path); err != nil {
			return err
		}
	}
	driveCfg := scene.DefaultDriveConfig()
	for i := 0; i < *n; i++ {
		z := rng.Uniform(6, 70)
		sc := scene.GenerateDrive(rng.Split(), driveCfg, z)
		path := filepath.Join(*out, fmt.Sprintf("drive_%02d_z%.0fm.png", i, z))
		if err := sc.Img.SavePNG(path); err != nil {
			return err
		}
	}

	// Attacked / defended triptych on one driving frame, using quickly
	// trained victims (visual demonstration only).
	train := dataset.GenerateDriveSet(rng.Split(), driveCfg, 120, driveCfg.MinZ, driveCfg.MaxZ)
	reg := regress.New(rng.Split(), driveCfg.Size)
	rcfg := regress.DefaultTrainConfig()
	rcfg.Epochs = 8
	reg.Train(train, rcfg)

	sc := scene.GenerateDrive(rng.Split(), driveCfg, 15)
	obj := &attack.RegressionObjective{Reg: reg}
	mask := attack.BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
	adv := attack.AutoPGD(obj, sc.Img, attack.DefaultAPGDConfig(0.08), mask)
	def := imaging.MedianBlur(adv, 3)

	for name, img := range map[string]*imaging.Image{
		"triptych_clean.png":    sc.Img,
		"triptych_attacked.png": adv,
		"triptych_defended.png": def,
	} {
		if err := img.SavePNG(filepath.Join(*out, name)); err != nil {
			return err
		}
	}
	fmt.Printf("clean pred %.1f m, attacked %.1f m, defended %.1f m (true %.1f m)\n",
		reg.Predict(sc.Img), reg.Predict(adv), reg.Predict(def), sc.Distance)

	// A stop-sign detection pair for the detection task.
	signTrain := dataset.GenerateSignSet(rng.Split(), signCfg, 120)
	det := detect.New(rng.Split(), signCfg.Size)
	dcfg := detect.DefaultTrainConfig()
	dcfg.Epochs = 8
	det.Train(signTrain, dcfg)
	ssc := scene.GenerateSign(rng.Split(), signCfg)
	if ssc.HasSign {
		dobj := &attack.DetectionObjective{Det: det, GT: []detect.Box{ssc.Box}}
		rp2 := attack.RP2(dobj, ssc.Img, ssc.Box, attack.DefaultRP2Config())
		if err := rp2.SavePNG(filepath.Join(*out, "sign_rp2_patch.png")); err != nil {
			return err
		}
	}

	fmt.Printf("wrote samples to %s\n", *out)
	return nil
}
